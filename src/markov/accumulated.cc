#include "markov/accumulated.hh"

#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "markov/solver_plan.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace gop::markov {

AccumulatedMethod resolve_accumulated_method(const Ctmc& chain, double t,
                                             const AccumulatedOptions& options) {
  return plan_accumulated(chain, t, options).accumulated;
}

namespace {

/// A = [[Q, I], [0, 0]];  exp(A t) top-right block is \int_0^t e^{Qs} ds.
linalg::DenseMatrix build_augmented_generator(const Ctmc& chain) {
  const size_t n = chain.state_count();
  const linalg::DenseMatrix q = chain.generator_dense();
  linalg::DenseMatrix augmented(2 * n, 2 * n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) augmented(r, c) = q(r, c);
    augmented(r, n + r) = 1.0;
  }
  return augmented;
}

std::vector<double> occupancy_by_augmented_exponential(const Ctmc& chain, double t,
                                                       AccumulatedWorkspace* aws,
                                                       ExpmWorkspace& ews) {
  const size_t n = chain.state_count();
  const linalg::DenseMatrix* augmented;
  linalg::DenseMatrix local;
  if (aws != nullptr) {
    if (!aws->augmented_built) {
      aws->augmented = build_augmented_generator(chain);
      aws->augmented_built = true;
    }
    augmented = &aws->augmented;
  } else {
    local = build_augmented_generator(chain);
    augmented = &local;
  }
  const linalg::DenseMatrix& expm = matrix_exponential(*augmented, t, ews);

  const std::vector<double>& pi0 = chain.initial_distribution();
  std::vector<double> occupancy(n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    if (pi0[r] == 0.0) continue;
    for (size_t c = 0; c < n; ++c) occupancy[c] += pi0[r] * expm(r, n + c);
  }
  return occupancy;
}

/// One dispatcher-level event per accumulated_occupancy call; see the
/// transient dispatcher for the rationale.
[[gnu::cold]] [[gnu::noinline]] void record_accumulated_event(const SolverPlan& plan, double t,
                                                              const char* method) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kAccumulated;
  event.method = method;
  event.storage = to_string(plan.storage);
  event.states = plan.states;
  event.t = t;
  event.lambda_t = plan.lambda_t;
  obs::record_event(std::move(event));
}

std::vector<double> accumulated_dispatch(const Ctmc& chain, double t,
                                         const AccumulatedOptions& options,
                                         AccumulatedWorkspace* aws) {
  GOP_REQUIRE(t >= 0.0, "time must be non-negative");
  GOP_OBS_SPAN("markov.accumulated");
  const SolverPlan plan = plan_accumulated(chain, t, options);
  if (t == 0.0) {
    if (obs::enabled()) record_accumulated_event(plan, t, "initial");
    return std::vector<double>(chain.state_count(), 0.0);
  }

  switch (plan.accumulated) {
    case AccumulatedMethod::kAugmentedExponential: {
      if (obs::enabled()) record_accumulated_event(plan, t, "augmented-expm");
      if (aws != nullptr) return occupancy_by_augmented_exponential(chain, t, aws, aws->expm);
      ExpmWorkspace fallback;
      return occupancy_by_augmented_exponential(
          chain, t, nullptr, detail::pooled_expm_workspace(2 * chain.state_count(), fallback));
    }
    case AccumulatedMethod::kUniformization:
      if (obs::enabled()) record_accumulated_event(plan, t, "uniformization");
      return uniformized_accumulated_occupancy(chain, t, options.uniformization);
    case AccumulatedMethod::kKrylov:
      if (obs::enabled()) record_accumulated_event(plan, t, "krylov-augmented");
      return krylov_accumulated_occupancy(chain, t, options.krylov);
    case AccumulatedMethod::kAuto:
      break;
  }
  throw InternalError("unreachable accumulated method");
}

}  // namespace

std::vector<double> accumulated_occupancy(const Ctmc& chain, double t,
                                          const AccumulatedOptions& options) {
  return accumulated_dispatch(chain, t, options, nullptr);
}

std::vector<double> accumulated_occupancy(const Ctmc& chain, double t,
                                          const AccumulatedOptions& options,
                                          AccumulatedWorkspace& ws) {
  return accumulated_dispatch(chain, t, options, &ws);
}

double accumulated_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                          const AccumulatedOptions& options) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> occupancy = accumulated_occupancy(chain, t, options);
  return linalg::dot(occupancy, state_reward);
}

double accumulated_impulse_reward(const Ctmc& chain,
                                  const std::function<double(const Transition&)>& impulse,
                                  double t, const AccumulatedOptions& options) {
  GOP_REQUIRE(static_cast<bool>(impulse), "impulse function must be callable");
  const std::vector<double> occupancy = accumulated_occupancy(chain, t, options);
  double total = 0.0;
  for (const Transition& tr : chain.transitions()) {
    const double weight = impulse(tr);
    if (weight == 0.0) continue;
    total += weight * tr.rate * occupancy[tr.from];
  }
  return total;
}

}  // namespace gop::markov
