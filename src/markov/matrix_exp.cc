#include "markov/matrix_exp.hh"

#include <cmath>

#include "fi/fi.hh"
#include "linalg/lu.hh"
#include "markov/solver_stats.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace gop::markov {

using linalg::DenseMatrix;

namespace {

// Padé [13/13] numerator coefficients (Higham, "The scaling and squaring
// method for the matrix exponential revisited", 2005).
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0, 1187353796428800.0,
    129060195264000.0,   10559470521600.0,    670442572800.0,     33522128640.0,
    1323241920.0,        40840800.0,          960960.0,           16380.0,
    182.0,               1.0};

// theta_13: largest norm for which the order-13 approximant meets double
// precision without scaling.
constexpr double kTheta13 = 5.371920351148152;

/// Cold and out of line so the event machinery (string members, registry
/// lock) stays off the expm hot path; the caller pays one predicted-not-taken
/// branch when tracing is disabled.
[[gnu::cold]] [[gnu::noinline]] void record_expm_event(size_t states, int squarings) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kMatrixExponential;
  event.method = "pade13";
  event.states = states;
  event.iterations = static_cast<size_t>(squarings);
  obs::record_event(std::move(event));
}

/// The numerical body, free of instrumentation. noinline so the wrapper's
/// ScopedSpan (an object with a cleanup) never gets merged into this frame:
/// measured on BM_Transient_MatrixExponential, a span scoped across the
/// dozen live matrix temporaries below costs ~5% even when tracing is
/// disabled, purely through codegen; scoped across the thin wrapper it is
/// free.
[[gnu::noinline]] DenseMatrix matrix_exponential_impl(const DenseMatrix& a, int squarings) {
  const size_t n = a.rows();
  DenseMatrix scaled = a * std::pow(2.0, -squarings);

  // Evaluate the [13/13] Padé approximant r(A) = (V - U)^{-1} (V + U) with
  //   U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  //   V =    A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  const DenseMatrix identity = DenseMatrix::identity(n);
  const DenseMatrix a2 = scaled * scaled;
  const DenseMatrix a4 = a2 * a2;
  const DenseMatrix a6 = a2 * a4;

  DenseMatrix inner_u = a6 * kPade13[13] + a4 * kPade13[11] + a2 * kPade13[9];
  DenseMatrix u =
      scaled * (a6 * inner_u + a6 * kPade13[7] + a4 * kPade13[5] + a2 * kPade13[3] +
                identity * kPade13[1]);

  DenseMatrix inner_v = a6 * kPade13[12] + a4 * kPade13[10] + a2 * kPade13[8];
  DenseMatrix v =
      a6 * inner_v + a6 * kPade13[6] + a4 * kPade13[4] + a2 * kPade13[2] + identity * kPade13[0];

  DenseMatrix result = linalg::LuFactorization(v - u).solve(v + u);

  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

}  // namespace

DenseMatrix matrix_exponential(const DenseMatrix& a) {
  GOP_REQUIRE(a.square(), "matrix_exponential requires a square matrix");
  GOP_OBS_SPAN("markov.expm");
  solver_stats().matrix_exponentials.fetch_add(1, std::memory_order_relaxed);

  const double norm = a.norm_inf();
  GOP_REQUIRE(std::isfinite(norm), "matrix_exponential: matrix has non-finite entries");

  int squarings = 0;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
  }
  GOP_CHECK_NUMERIC(!GOP_FI_POINT(fi::SiteId::kExpmScalingOverflow),
                    "matrix_exponential: scaling-and-squaring setup overflowed");
  if (obs::enabled()) record_expm_event(a.rows(), squarings);
  return matrix_exponential_impl(a, squarings);
}

DenseMatrix matrix_exponential(const DenseMatrix& a, double t) {
  GOP_REQUIRE(std::isfinite(t), "matrix_exponential: t must be finite");
  return matrix_exponential(a * t);
}

}  // namespace gop::markov
