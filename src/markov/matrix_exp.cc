#include "markov/matrix_exp.hh"

#include <cmath>
#include <utility>

#include "fi/fi.hh"
#include "markov/solver_stats.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "util/error.hh"

namespace gop::markov {

using linalg::DenseMatrix;

namespace {

// Padé [13/13] numerator coefficients (Higham, "The scaling and squaring
// method for the matrix exponential revisited", 2005).
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0, 1187353796428800.0,
    129060195264000.0,   10559470521600.0,    670442572800.0,     33522128640.0,
    1323241920.0,        40840800.0,          960960.0,           16380.0,
    182.0,               1.0};

// theta_13: largest norm for which the order-13 approximant meets double
// precision without scaling.
constexpr double kTheta13 = 5.371920351148152;

obs::Counter& workspace_alloc_counter() {
  static obs::Counter& c = obs::counter("markov.expm_workspace_allocs");
  return c;
}

obs::Counter& workspace_reuse_counter() {
  static obs::Counter& c = obs::counter("markov.expm_workspace_reuses");
  return c;
}

/// Cold and out of line so the event machinery (string members, registry
/// lock) stays off the expm hot path; the caller pays one predicted-not-taken
/// branch when tracing is disabled.
[[gnu::cold]] [[gnu::noinline]] void record_expm_event(size_t states, int squarings) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kMatrixExponential;
  event.method = "pade13";
  event.states = states;
  event.iterations = static_cast<size_t>(squarings);
  obs::record_event(std::move(event));
}

/// The numerical body, free of instrumentation. noinline so the wrapper's
/// ScopedSpan (an object with a cleanup) never gets merged into this frame:
/// measured on BM_Transient_MatrixExponential, a span scoped across the live
/// matrix buffers below costs ~5% even when tracing is disabled, purely
/// through codegen; scoped across the thin wrapper it is free.
///
/// Every step runs through the fused kernels (linalg/dense_matrix.hh) on
/// workspace buffers, so the body allocates nothing once ws has seen this
/// dimension — yet it performs, per output element, the exact floating-point
/// operation sequence of the historical temporary-allocating code:
/// `X*coef + Y*coef + ...` chains become scale_copy_into followed by
/// add_scaled (same round-product-then-add per element), `+ identity*coef`
/// becomes add_to_diagonal (off-diagonal `+ 0.0` is a bitwise no-op here
/// because no intermediate in these chains can be -0.0: GEMM accumulators
/// start at +0.0 and IEEE-754 exact cancellation yields +0.0), and the
/// factor/solve runs on the same LU with a batched substitution that keeps
/// each column's scalar order. See docs/performance.md.
[[gnu::noinline]] void matrix_exponential_impl(const DenseMatrix& a, int squarings,
                                               ExpmWorkspace& ws) {
  using linalg::add_into;
  using linalg::add_to_diagonal;
  using linalg::add_weighted3;
  using linalg::multiply_into;
  using linalg::scale_copy_into;
  using linalg::subtract_into;
  using linalg::weighted_sum3_into;

  scale_copy_into(ws.scaled, a, std::pow(2.0, -squarings));

  // Evaluate the [13/13] Padé approximant r(A) = (V - U)^{-1} (V + U) with
  //   U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  //   V =    A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  // The three-term coefficient chains run through the single-pass fused
  // kernels; their per-element order is the scale_copy_into/add_scaled
  // sequence of the historical code (see dense_matrix.hh).
  multiply_into(ws.a2, ws.scaled, ws.scaled);
  multiply_into(ws.a4, ws.a2, ws.a2);
  multiply_into(ws.a6, ws.a2, ws.a4);

  weighted_sum3_into(ws.poly_u, kPade13[13], ws.a6, kPade13[11], ws.a4, kPade13[9], ws.a2);
  multiply_into(ws.u, ws.a6, ws.poly_u);
  add_weighted3(ws.u, kPade13[7], ws.a6, kPade13[5], ws.a4, kPade13[3], ws.a2);
  add_to_diagonal(ws.u, kPade13[1]);
  multiply_into(ws.poly_u, ws.scaled, ws.u);  // U, reusing the inner_u buffer

  weighted_sum3_into(ws.poly_v, kPade13[12], ws.a6, kPade13[10], ws.a4, kPade13[8], ws.a2);
  multiply_into(ws.v, ws.a6, ws.poly_v);
  add_weighted3(ws.v, kPade13[6], ws.a6, kPade13[4], ws.a4, kPade13[2], ws.a2);
  add_to_diagonal(ws.v, kPade13[0]);

  subtract_into(ws.tmp, ws.v, ws.poly_u);  // V - U
  ws.lu.factorize(ws.tmp);
  add_into(ws.tmp, ws.v, ws.poly_u);  // V + U; tmp is free once factorize copied it
  ws.lu.solve_into(ws.tmp, ws.result);

  for (int i = 0; i < squarings; ++i) {
    multiply_into(ws.tmp, ws.result, ws.result);
    std::swap(ws.result, ws.tmp);
  }
}

}  // namespace

void ExpmWorkspace::ensure(size_t n) {
  // Steady-state fast path: nothing to reshape, count the reuse and return.
  // The result check guards against a moved-from workspace whose ensured_dim
  // survived the move while its buffers did not.
  if (ensured_dim == n && result.rows() == n && result.cols() == n) {
    workspace_reuse_counter().add(1);
    return;
  }
  size_t grown = 0;
  for (DenseMatrix* m : {&input, &scaled, &a2, &a4, &a6, &poly_u, &poly_v, &u, &v, &tmp, &result}) {
    if (m->reshape_uninitialized(n, n)) ++grown;
  }
  if (lu.reserve(n)) ++grown;
  ensured_dim = n;
  if (grown > 0) {
    workspace_alloc_counter().add(grown);
  } else {
    workspace_reuse_counter().add(1);
  }
}

ExpmWorkspace& detail::pooled_expm_workspace(size_t dim, ExpmWorkspace& fallback) {
  if (dim > kPooledExpmMaxDim) return fallback;
  thread_local ExpmWorkspace pool;
  return pool;
}

const DenseMatrix& matrix_exponential(const DenseMatrix& a, ExpmWorkspace& ws) {
  GOP_REQUIRE(a.square(), "matrix_exponential requires a square matrix");
  GOP_OBS_SPAN("markov.expm");
  solver_stats().matrix_exponentials.fetch_add(1, std::memory_order_relaxed);

  const double norm = a.norm_inf();
  GOP_REQUIRE(std::isfinite(norm), "matrix_exponential: matrix has non-finite entries");

  int squarings = 0;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
  }
  GOP_CHECK_NUMERIC(!GOP_FI_POINT(fi::SiteId::kExpmScalingOverflow),
                    "matrix_exponential: scaling-and-squaring setup overflowed");
  if (obs::enabled()) record_expm_event(a.rows(), squarings);
  ws.ensure(a.rows());
  matrix_exponential_impl(a, squarings, ws);
  return ws.result;
}

const DenseMatrix& matrix_exponential(const DenseMatrix& a, double t, ExpmWorkspace& ws) {
  GOP_REQUIRE(std::isfinite(t), "matrix_exponential: t must be finite");
  // Scale into the workspace's input slot; ensure() inside the call below
  // re-reshapes that slot to the same shape, which is a no-op.
  linalg::scale_copy_into(ws.input, a, t);
  return matrix_exponential(ws.input, ws);
}

DenseMatrix matrix_exponential(const DenseMatrix& a) {
  ExpmWorkspace fallback;
  return matrix_exponential(a, detail::pooled_expm_workspace(a.rows(), fallback));
}

DenseMatrix matrix_exponential(const DenseMatrix& a, double t) {
  ExpmWorkspace fallback;
  return matrix_exponential(a, t, detail::pooled_expm_workspace(a.rows(), fallback));
}

}  // namespace gop::markov
