#pragma once

/// \file accumulated.hh
/// Expected accumulated (interval-of-time) rewards over [0, t], mirroring the
/// paper's "expected accumulated interval-of-time reward for [0, phi]" solver
/// (Table 1, measure \int_0^phi tau h(tau) dtau).
///
/// Default engine: the augmented-generator exponential
///   exp([[Q, I], [0, 0]] t) = [[e^{Qt}, \int_0^t e^{Qs} ds], [0, I]]
/// which inherits the stiffness-robustness of the Padé method. A
/// uniformization-based path is available for cross-checking.

#include <functional>
#include <vector>

#include "linalg/dense_matrix.hh"
#include "markov/ctmc.hh"
#include "markov/krylov.hh"
#include "markov/matrix_exp.hh"
#include "markov/uniformization.hh"

namespace gop::markov {

enum class AccumulatedMethod {
  kAuto,
  kAugmentedExponential,
  kUniformization,
  /// One Krylov action of the sparse augmented operator [[Q^T, 0], [I, 0]]
  /// (krylov.hh): the large-and-stiff counterpart of kAugmentedExponential.
  kKrylov,
};

struct AccumulatedOptions {
  AccumulatedMethod method = AccumulatedMethod::kAuto;
  UniformizationOptions uniformization;
  KrylovOptions krylov;
  /// kAuto picks uniformization for large chains only while Lambda*t stays
  /// below this; beyond it the Krylov engine takes over.
  double auto_stiffness_cutoff = 1e5;
  size_t auto_dense_max_states = 2048;
};

/// The engine the dispatcher would run for (chain, t): a thin wrapper over
/// plan_accumulated (solver_plan.hh), where the kAuto cutoff logic lives.
/// For kAuto the choice depends on the chain size *and* on Lambda*t.
AccumulatedMethod resolve_accumulated_method(const Ctmc& chain, double t,
                                             const AccumulatedOptions& options);

/// Expected total time spent in each state during [0, t]:
/// L_s(t) = \int_0^t pi_s(u) du. Sums to t.
std::vector<double> accumulated_occupancy(const Ctmc& chain, double t,
                                          const AccumulatedOptions& options = {});

/// Reusable state for repeated accumulated solves on ONE chain: the 2n x 2n
/// augmented generator [[Q, I], [0, 0]] is assembled once and the Padé
/// scratch is shared across the grid, so steady-state solves allocate only
/// their result vector. Results are bit-identical to the pointwise overload.
/// Do not share one workspace across different chains.
struct AccumulatedWorkspace {
  ExpmWorkspace expm;
  linalg::DenseMatrix augmented;
  bool augmented_built = false;
};

/// Occupancy over [0, t], using caller-owned scratch.
std::vector<double> accumulated_occupancy(const Ctmc& chain, double t,
                                          const AccumulatedOptions& options,
                                          AccumulatedWorkspace& ws);

/// Expected accumulated rate reward: sum_s L_s(t) * reward[s].
double accumulated_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                          const AccumulatedOptions& options = {});

/// Expected accumulated impulse reward over [0, t]: each transition fires at
/// rate `rate` while the chain occupies `from`, earning `impulse(transition)`
/// per completion, so the expectation is
///   sum_transitions impulse(tr) * tr.rate * L_{tr.from}(t).
/// Self-loop transitions contribute (they complete without changing state).
double accumulated_impulse_reward(const Ctmc& chain,
                                  const std::function<double(const Transition&)>& impulse,
                                  double t, const AccumulatedOptions& options = {});

}  // namespace gop::markov
