#include "markov/transient.hh"

#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "util/error.hh"

namespace gop::markov {

TransientMethod resolve_transient_method(const Ctmc& chain, double t,
                                         const TransientOptions& options) {
  if (options.method != TransientMethod::kAuto) return options.method;
  const double lambda_t = chain.max_exit_rate() * t;
  if (lambda_t <= options.auto_stiffness_cutoff && chain.state_count() > options.auto_dense_max_states) {
    return TransientMethod::kUniformization;
  }
  if (chain.state_count() <= options.auto_dense_max_states) {
    return TransientMethod::kMatrixExponential;
  }
  // Large *and* stiff: uniformization is the only option we have; it will
  // throw if Lambda*t exceeds its configured bound.
  return TransientMethod::kUniformization;
}

std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options) {
  GOP_REQUIRE(t >= 0.0, "time must be non-negative");
  if (t == 0.0) return chain.initial_distribution();

  switch (resolve_transient_method(chain, t, options)) {
    case TransientMethod::kUniformization:
      return uniformized_transient_distribution(chain, t, options.uniformization);
    case TransientMethod::kMatrixExponential: {
      // pi(t)^T = pi(0)^T exp(Q t)
      const linalg::DenseMatrix expm = matrix_exponential(chain.generator_dense(), t);
      return expm.left_multiply(chain.initial_distribution());
    }
    case TransientMethod::kAuto:
      break;
  }
  throw InternalError("unreachable transient method");
}

double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> pi = transient_distribution(chain, t, options);
  return linalg::dot(pi, state_reward);
}

}  // namespace gop::markov
