#include "markov/transient.hh"

#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "markov/solver_plan.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace gop::markov {

TransientMethod resolve_transient_method(const Ctmc& chain, double t,
                                         const TransientOptions& options) {
  return plan_transient(chain, t, options).transient;
}

namespace {

/// One dispatcher-level event per transient_distribution call, carrying the
/// engine the dispatcher actually resolved to — the assertion surface for
/// "the intended method really ran" in the cross-solver validation tier.
/// Cold + noinline: the event construction must not be inlined into the
/// dispatcher, where it would dilute the hot path's I-cache for a branch
/// that is never taken while tracing is disabled.
[[gnu::cold]] [[gnu::noinline]] void record_transient_event(const SolverPlan& plan, double t,
                                                            const char* method) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kTransient;
  event.method = method;
  event.storage = to_string(plan.storage);
  event.states = plan.states;
  event.t = t;
  event.lambda_t = plan.lambda_t;
  obs::record_event(std::move(event));
}

/// The dense arm: pi(t)^T = pi(0)^T exp(Q t). With a TransientWorkspace the
/// generator is materialized once per workspace; either way the expm runs on
/// caller-owned or pooled scratch, so steady-state solves only allocate the
/// result vector.
std::vector<double> dense_transient(const Ctmc& chain, double t, TransientWorkspace* tws,
                                    ExpmWorkspace& ews) {
  const linalg::DenseMatrix* generator;
  linalg::DenseMatrix local;
  if (tws != nullptr) {
    if (!tws->generator_built) {
      tws->generator = chain.generator_dense();
      tws->generator_built = true;
    }
    generator = &tws->generator;
  } else {
    local = chain.generator_dense();
    generator = &local;
  }
  const linalg::DenseMatrix& expm = matrix_exponential(*generator, t, ews);
  return expm.left_multiply(chain.initial_distribution());
}

std::vector<double> transient_dispatch(const Ctmc& chain, double t,
                                       const TransientOptions& options, TransientWorkspace* tws) {
  GOP_REQUIRE(t >= 0.0, "time must be non-negative");
  GOP_OBS_SPAN("markov.transient");
  const SolverPlan plan = plan_transient(chain, t, options);
  if (t == 0.0) {
    if (obs::enabled()) record_transient_event(plan, t, "initial");
    return chain.initial_distribution();
  }

  switch (plan.transient) {
    case TransientMethod::kUniformization:
      if (obs::enabled()) record_transient_event(plan, t, "uniformization");
      return uniformized_transient_distribution(chain, t, options.uniformization);
    case TransientMethod::kMatrixExponential: {
      if (obs::enabled()) record_transient_event(plan, t, "pade-expm");
      if (tws != nullptr) return dense_transient(chain, t, tws, tws->expm);
      ExpmWorkspace fallback;
      return dense_transient(chain, t, nullptr,
                             detail::pooled_expm_workspace(chain.state_count(), fallback));
    }
    case TransientMethod::kKrylov:
      if (obs::enabled()) record_transient_event(plan, t, "krylov-expv");
      return krylov_transient_distribution(chain, t, options.krylov);
    case TransientMethod::kAuto:
      break;
  }
  throw InternalError("unreachable transient method");
}

}  // namespace

std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options) {
  return transient_dispatch(chain, t, options, nullptr);
}

std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options,
                                           TransientWorkspace& ws) {
  return transient_dispatch(chain, t, options, &ws);
}

double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> pi = transient_distribution(chain, t, options);
  return linalg::dot(pi, state_reward);
}

}  // namespace gop::markov
