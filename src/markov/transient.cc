#include "markov/transient.hh"

#include <cmath>
#include <utility>
#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "util/error.hh"

namespace gop::markov {

namespace {

TransientMethod resolve(const Ctmc& chain, double t, const TransientOptions& options) {
  if (options.method != TransientMethod::kAuto) return options.method;
  const double lambda_t = chain.max_exit_rate() * t;
  if (lambda_t <= options.auto_stiffness_cutoff && chain.state_count() > options.auto_dense_max_states) {
    return TransientMethod::kUniformization;
  }
  if (chain.state_count() <= options.auto_dense_max_states) {
    return TransientMethod::kMatrixExponential;
  }
  // Large *and* stiff: uniformization is the only option we have; it will
  // throw if Lambda*t exceeds its configured bound.
  return TransientMethod::kUniformization;
}

}  // namespace

std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options) {
  GOP_REQUIRE(t >= 0.0, "time must be non-negative");
  if (t == 0.0) return chain.initial_distribution();

  switch (resolve(chain, t, options)) {
    case TransientMethod::kUniformization:
      return uniformized_transient_distribution(chain, t, options.uniformization);
    case TransientMethod::kMatrixExponential: {
      // pi(t)^T = pi(0)^T exp(Q t)
      const linalg::DenseMatrix expm = matrix_exponential(chain.generator_dense(), t);
      return expm.left_multiply(chain.initial_distribution());
    }
    case TransientMethod::kAuto:
      break;
  }
  throw InternalError("unreachable transient method");
}

double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> pi = transient_distribution(chain, t, options);
  return linalg::dot(pi, state_reward);
}

std::vector<std::vector<double>> transient_distribution_series(
    const Ctmc& chain, const std::vector<double>& times, const TransientOptions& options) {
  std::vector<std::vector<double>> series;
  series.reserve(times.size());
  for (size_t i = 1; i < times.size(); ++i) {
    GOP_REQUIRE(times[i] >= times[i - 1], "times must be sorted non-decreasing");
  }
  if (times.empty()) return series;
  GOP_REQUIRE(times.front() >= 0.0, "times must be non-negative");

  const bool incremental =
      !times.empty() && resolve(chain, times.back(), options) == TransientMethod::kMatrixExponential;
  if (!incremental) {
    for (double t : times) series.push_back(transient_distribution(chain, t, options));
    return series;
  }

  const linalg::DenseMatrix q = chain.generator_dense();
  std::vector<std::pair<double, linalg::DenseMatrix>> step_cache;
  const auto step_matrix = [&](double gap) -> const linalg::DenseMatrix& {
    for (const auto& [cached_gap, matrix] : step_cache) {
      if (std::abs(cached_gap - gap) <= 1e-12 * std::max(1.0, gap)) return matrix;
    }
    step_cache.emplace_back(gap, matrix_exponential(q, gap));
    return step_cache.back().second;
  };

  std::vector<double> pi = chain.initial_distribution();
  double now = 0.0;
  for (double t : times) {
    const double gap = t - now;
    if (gap > 0.0) {
      pi = step_matrix(gap).left_multiply(pi);
      now = t;
    }
    series.push_back(pi);
  }
  return series;
}

}  // namespace gop::markov
