#include "markov/fox_glynn.hh"

#include <cmath>
#include <deque>
#include <limits>

#include "fi/fi.hh"
#include "util/error.hh"

namespace gop::markov {

PoissonWindow poisson_window(double lambda, double epsilon) {
  GOP_REQUIRE(lambda > 0.0 && std::isfinite(lambda), "poisson_window: lambda must be positive");
  GOP_REQUIRE(epsilon >= kMinPoissonEpsilon && epsilon < 1.0,
              "poisson_window: epsilon must be in [kMinPoissonEpsilon, 1)");

  const size_t mode = static_cast<size_t>(lambda);

  // Work with values scaled so the mode has weight 1; the final
  // renormalization maps them back to probabilities. Truncation uses a
  // conservative per-side budget of epsilon/4 relative to the accumulated
  // mass, with a hard relative floor to stop the scan once terms are
  // negligible at double precision. The floor must stay strictly positive:
  // if it underflowed to zero, the scans below — whose terms eventually
  // underflow to exactly zero too — would never satisfy `v < floor_ratio`
  // and would run forever. kMinPoissonEpsilon keeps epsilon * 1e-4 normal,
  // and the max() guards the invariant against future retuning.
  const double floor_ratio =
      std::max(std::numeric_limits<double>::min(), std::min(1e-18, epsilon * 1e-4));

  std::deque<double> values;
  values.push_back(1.0);
  double total = 1.0;

  // Downward recurrence: p_{k-1} = p_k * k / lambda.
  {
    double v = 1.0;
    size_t k = mode;
    while (k > 0) {
      v *= static_cast<double>(k) / lambda;
      if (v < floor_ratio) break;
      values.push_front(v);
      total += v;
      --k;
    }
  }
  const size_t left = mode - (values.size() - 1);

  // Upward recurrence: p_{k+1} = p_k * lambda / (k+1).
  {
    double v = 1.0;
    size_t k = mode;
    while (true) {
      v *= lambda / static_cast<double>(k + 1);
      if (v < floor_ratio) break;
      values.push_back(v);
      total += v;
      ++k;
    }
  }

  PoissonWindow window;
  window.left = left;
  window.weights.assign(values.begin(), values.end());
  for (double& w : window.weights) w /= total;
  if (GOP_FI_POINT(fi::SiteId::kFoxGlynnTruncate)) {
    // Keep at least the mode but drop the upper half of the (normalized)
    // window: the weights now sum to well below 1, modelling an
    // over-aggressive right truncation.
    window.weights.resize(std::max<size_t>(1, window.weights.size() / 2));
  }
  return window;
}

double poisson_pmf(double lambda, size_t k) {
  const double log_pmf =
      -lambda + static_cast<double>(k) * std::log(lambda) - std::lgamma(static_cast<double>(k) + 1.0);
  return std::exp(log_pmf);
}

}  // namespace gop::markov
