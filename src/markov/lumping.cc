#include "markov/lumping.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

/// Per-state outgoing rate into each block (own block excluded).
std::vector<std::map<size_t, double>> block_rates(const Ctmc& chain,
                                                  const Partition& partition) {
  std::vector<std::map<size_t, double>> rates(chain.state_count());
  const linalg::CsrMatrix& matrix = chain.rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    for (size_t k = matrix.row_ptr()[s]; k < matrix.row_ptr()[s + 1]; ++k) {
      const size_t target_block = partition[matrix.col_idx()[k]];
      if (target_block == partition[s]) continue;
      rates[s][target_block] += matrix.values()[k];
    }
  }
  return rates;
}

void validate_partition(const Ctmc& chain, const Partition& partition) {
  GOP_REQUIRE(partition.size() == chain.state_count(), "partition length mismatch");
  GOP_REQUIRE(block_count(partition) >= 1, "partition must have at least one block");
}

}  // namespace

size_t block_count(const Partition& partition) {
  GOP_REQUIRE(!partition.empty(), "empty partition");
  const size_t blocks = *std::max_element(partition.begin(), partition.end()) + 1;
  std::vector<bool> seen(blocks, false);
  for (size_t b : partition) seen[b] = true;
  for (size_t b = 0; b < blocks; ++b) {
    GOP_REQUIRE(seen[b], str_format("partition blocks are not contiguous: block %zu unused", b));
  }
  return blocks;
}

LumpingCheck check_lumpable(const Ctmc& chain, const Partition& partition, double tol) {
  validate_partition(chain, partition);
  const size_t blocks = block_count(partition);
  const auto rates = block_rates(chain, partition);

  // First member of each block is its reference.
  std::vector<size_t> reference(blocks, SIZE_MAX);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    const size_t b = partition[s];
    if (reference[b] == SIZE_MAX) {
      reference[b] = s;
      continue;
    }
    // Compare s's block-rate map with the reference's.
    const auto& mine = rates[s];
    const auto& ref = rates[reference[b]];
    for (size_t target = 0; target < blocks; ++target) {
      if (target == b) continue;
      const auto get = [&](const std::map<size_t, double>& m) {
        const auto it = m.find(target);
        return it == m.end() ? 0.0 : it->second;
      };
      if (std::abs(get(mine) - get(ref)) > tol) {
        return LumpingCheck{false, reference[b], s, target};
      }
    }
  }
  return LumpingCheck{true, 0, 0, 0};
}

Ctmc lump(const Ctmc& chain, const Partition& partition, double tol) {
  const LumpingCheck check = check_lumpable(chain, partition, tol);
  if (!check.lumpable) {
    throw ModelError(str_format(
        "partition is not ordinarily lumpable: states %zu and %zu disagree on the rate into "
        "block %zu",
        check.witness_state_a, check.witness_state_b, check.witness_block));
  }
  const size_t blocks = block_count(partition);
  const auto rates = block_rates(chain, partition);

  std::vector<Transition> transitions;
  std::vector<bool> done(blocks, false);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    const size_t b = partition[s];
    if (done[b]) continue;
    done[b] = true;
    for (const auto& [target, rate] : rates[s]) {
      if (rate > 0.0) transitions.push_back(Transition{b, target, rate, -1});
    }
  }

  std::vector<double> initial(blocks, 0.0);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    initial[partition[s]] += chain.initial_distribution()[s];
  }
  return Ctmc(blocks, std::move(transitions), std::move(initial));
}

Partition coarsest_lumpable_partition(const Ctmc& chain, const Partition& seed, double tol) {
  validate_partition(chain, seed);
  GOP_REQUIRE(tol > 0.0, "tol must be positive");

  Partition current = seed;
  size_t blocks = block_count(current);

  // Iterative signature refinement: split blocks whose members see
  // different (quantized) rate vectors into the other blocks. Quantization
  // by `tol` makes signatures hashable; exact-symmetry use cases have exact
  // rate ties so the quantization is benign.
  while (true) {
    const auto rates = block_rates(chain, current);
    using Signature = std::pair<size_t, std::vector<std::pair<size_t, long long>>>;
    std::map<Signature, size_t> block_of_signature;
    Partition refined(chain.state_count());
    for (size_t s = 0; s < chain.state_count(); ++s) {
      Signature signature;
      signature.first = current[s];
      for (const auto& [target, rate] : rates[s]) {
        signature.second.emplace_back(target, std::llround(rate / tol));
      }
      const auto [it, inserted] =
          block_of_signature.try_emplace(std::move(signature), block_of_signature.size());
      refined[s] = it->second;
    }
    const size_t refined_blocks = block_of_signature.size();
    if (refined_blocks == blocks) return current;
    current = std::move(refined);
    blocks = refined_blocks;
  }
}

}  // namespace gop::markov
