#pragma once

/// \file sensitivity.hh
/// Sensitivity of steady-state measures to generator perturbations. For an
/// irreducible CTMC with stationary pi (pi Q = 0, sum pi = 1) and a
/// parametrized generator Q(theta), the derivative dpi/dtheta solves the
/// singular-but-consistent system
///
///     (dpi) Q = -pi (dQ/dtheta),   sum(dpi) = 0.
///
/// We solve it directly by replacing one column of Q with the normalization
/// condition — the same device used by direct stationary solvers. This backs
/// "which rate moves rho the most?" style design questions without
/// finite-difference noise; a finite-difference helper is provided for
/// cross-checking and for measures without analytic derivatives.

#include <functional>
#include <vector>

#include "linalg/dense_matrix.hh"
#include "markov/ctmc.hh"

namespace gop::markov {

/// dpi/dtheta given the stationary distribution `pi` of `chain` and the
/// generator derivative `dq` (a dense n x n matrix whose rows sum to 0).
std::vector<double> steady_state_sensitivity(const Ctmc& chain, const std::vector<double>& pi,
                                             const linalg::DenseMatrix& dq);

/// Derivative of the steady-state reward r^T pi.
double steady_state_reward_sensitivity(const Ctmc& chain, const std::vector<double>& pi,
                                       const linalg::DenseMatrix& dq,
                                       const std::vector<double>& state_reward);

/// Central finite difference of an arbitrary scalar function, with relative
/// step `rel_step` (absolute step for base value 0).
double finite_difference(const std::function<double(double)>& f, double x,
                         double rel_step = 1e-5);

}  // namespace gop::markov
