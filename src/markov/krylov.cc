#include "markov/krylov.hh"

#include <cmath>

#include "linalg/dense_matrix.hh"
#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

struct ArnoldiResult {
  std::vector<std::vector<double>> basis;  // orthonormal vectors v_1..v_k
  linalg::DenseMatrix h;                   // (k+1) x k Hessenberg entries
  size_t dimension = 0;                    // k actually built
  bool happy_breakdown = false;            // invariant subspace found
};

/// Arnoldi with modified Gram-Schmidt (plus one reorthogonalization pass).
ArnoldiResult arnoldi(const linalg::CsrMatrix& a, const std::vector<double>& v0, size_t m) {
  ArnoldiResult result;
  result.h = linalg::DenseMatrix(m + 1, m, 0.0);
  result.basis.push_back(v0);

  for (size_t j = 0; j < m; ++j) {
    std::vector<double> w = a.right_multiply(result.basis[j]);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i <= j; ++i) {
        const double coefficient = linalg::dot(w, result.basis[i]);
        if (coefficient == 0.0) continue;
        linalg::axpy(-coefficient, result.basis[i], w);
        result.h(i, j) += coefficient;
      }
    }
    const double next_norm = norm2(w);
    result.h(j + 1, j) = next_norm;
    result.dimension = j + 1;
    if (next_norm <= 1e-14) {
      result.happy_breakdown = true;
      break;
    }
    linalg::scale(w, 1.0 / next_norm);
    result.basis.push_back(std::move(w));
  }
  return result;
}

}  // namespace

std::vector<double> krylov_expv(const linalg::CsrMatrix& a, double t,
                                const std::vector<double>& v, const KrylovOptions& options) {
  GOP_REQUIRE(a.rows() == a.cols(), "krylov_expv requires a square matrix");
  GOP_REQUIRE(v.size() == a.rows(), "vector length mismatch");
  GOP_REQUIRE(std::isfinite(t) && t >= 0.0, "t must be non-negative and finite");
  GOP_REQUIRE(options.basis_dimension >= 2, "basis dimension must be at least 2");

  const size_t n = a.rows();
  std::vector<double> w = v;
  if (t == 0.0) return w;

  const size_t m = std::min(options.basis_dimension, n);
  double remaining = t;
  double tau = t;
  size_t substeps = 0;

  while (remaining > 0.0) {
    GOP_CHECK_NUMERIC(++substeps <= options.max_substeps,
                      str_format("krylov_expv exceeded %zu sub-steps; the problem is too stiff "
                                 "for the configured tolerance",
                                 options.max_substeps));

    const double beta = norm2(w);
    if (beta == 0.0) return w;  // exp(tA) 0 = 0

    std::vector<double> v1 = w;
    linalg::scale(v1, 1.0 / beta);
    const ArnoldiResult krylov = arnoldi(a, v1, m);
    const size_t k = krylov.dimension;

    tau = std::min(tau, remaining);
    while (true) {
      // Dense exponential of the k x k Hessenberg block.
      linalg::DenseMatrix hk(k, k, 0.0);
      for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < k; ++c) hk(r, c) = krylov.h(r, c);
      const linalg::DenseMatrix f = matrix_exponential(hk, tau);

      // Leading local-error term (Saad): beta * h_{k+1,k} * |e_k^T F e_1|.
      const double residual =
          krylov.happy_breakdown ? 0.0 : krylov.h(k, k - 1) * std::abs(f(k - 1, 0));
      const double error_estimate = beta * residual * tau;

      if (error_estimate <= options.tolerance * std::max(beta, 1.0) || tau <= remaining * 1e-12) {
        // Accept: w = beta * V_k (F e_1).
        std::vector<double> combination(n, 0.0);
        for (size_t i = 0; i < k; ++i) {
          linalg::axpy(beta * f(i, 0), krylov.basis[i], combination);
        }
        w = std::move(combination);
        remaining -= tau;
        tau *= 1.3;  // optimistic growth, halved again on the next rejection
        break;
      }
      tau *= 0.5;
    }
  }
  return w;
}

std::vector<double> krylov_transient_distribution(const Ctmc& chain, double t,
                                                  const KrylovOptions& options) {
  // pi(t)^T = pi(0)^T exp(Q t)  <=>  pi(t) = exp(Q^T t) pi(0).
  linalg::CooBuilder builder(chain.state_count(), chain.state_count());
  const linalg::CsrMatrix& rates = chain.rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.exit_rates()[s] != 0.0) builder.add(s, s, -chain.exit_rates()[s]);
    for (size_t kk = rates.row_ptr()[s]; kk < rates.row_ptr()[s + 1]; ++kk) {
      builder.add(rates.col_idx()[kk], s, rates.values()[kk]);  // transposed
    }
  }
  return krylov_expv(builder.build(), t, chain.initial_distribution(), options);
}

}  // namespace gop::markov
