#include "markov/krylov.hh"

#include <cmath>
#include <limits>

#include "fi/fi.hh"
#include "linalg/dense_matrix.hh"
#include "linalg/vector_ops.hh"
#include "markov/matrix_exp.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

struct ArnoldiResult {
  std::vector<std::vector<double>> basis;  // orthonormal vectors v_1..v_k
  linalg::DenseMatrix h;                   // (k+1) x k Hessenberg entries
  size_t dimension = 0;                    // k actually built
  bool happy_breakdown = false;            // invariant subspace found
};

/// Arnoldi with modified Gram-Schmidt (plus one reorthogonalization pass).
ArnoldiResult arnoldi(const linalg::CsrMatrix& a, const std::vector<double>& v0, size_t m) {
  ArnoldiResult result;
  result.h = linalg::DenseMatrix(m + 1, m, 0.0);
  result.basis.push_back(v0);

  for (size_t j = 0; j < m; ++j) {
    std::vector<double> w = a.right_multiply(result.basis[j]);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i <= j; ++i) {
        const double coefficient = linalg::dot(w, result.basis[i]);
        if (coefficient == 0.0) continue;
        linalg::axpy(-coefficient, result.basis[i], w);
        result.h(i, j) += coefficient;
      }
    }
    double next_norm = norm2(w);
    if (GOP_FI_POINT(fi::SiteId::kKrylovBreakdown)) next_norm = 0.0;
    result.h(j + 1, j) = next_norm;
    result.dimension = j + 1;
    if (next_norm <= 1e-14) {
      result.happy_breakdown = true;
      break;
    }
    linalg::scale(w, 1.0 / next_norm);
    result.basis.push_back(std::move(w));
  }
  return result;
}

/// One event per krylov_expv call: how many sub-steps the adaptive loop took
/// for the horizon. Cold + noinline for the same I-cache reason as the
/// dispatcher-level recorders (transient.cc).
[[gnu::cold]] [[gnu::noinline]] void record_krylov_event(size_t n, double t, size_t substeps,
                                                         size_t basis) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kKrylovPass;
  event.method = "krylov-expv";
  event.states = n;
  event.t = t;
  event.iterations = substeps;
  event.fox_glynn_right = basis;  // reused slot: Arnoldi basis dimension
  obs::record_event(std::move(event));
}

}  // namespace

std::vector<double> krylov_expv(const linalg::CsrMatrix& a, double t,
                                const std::vector<double>& v, const KrylovOptions& options) {
  GOP_REQUIRE(a.rows() == a.cols(), "krylov_expv requires a square matrix");
  GOP_REQUIRE(v.size() == a.rows(), "vector length mismatch");
  GOP_REQUIRE(std::isfinite(t) && t >= 0.0, "t must be non-negative and finite");
  GOP_REQUIRE(options.basis_dimension >= 2, "basis dimension must be at least 2");

  const size_t n = a.rows();
  std::vector<double> w = v;
  if (t == 0.0) return w;

  const size_t m = std::min(options.basis_dimension, n);
  double remaining = t;
  double tau = t;
  size_t substeps = 0;

  while (remaining > 0.0) {
    GOP_CHECK_NUMERIC(++substeps <= options.max_substeps,
                      str_format("krylov_expv exceeded %zu sub-steps; the problem is too stiff "
                                 "for the configured tolerance",
                                 options.max_substeps));

    const double beta = norm2(w);
    if (beta == 0.0) return w;  // exp(tA) 0 = 0

    std::vector<double> v1 = w;
    linalg::scale(v1, 1.0 / beta);
    const ArnoldiResult krylov = arnoldi(a, v1, m);
    const size_t k = krylov.dimension;

    tau = std::min(tau, remaining);
    while (true) {
      // Dense exponential of the k x k Hessenberg block.
      linalg::DenseMatrix hk(k, k, 0.0);
      for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < k; ++c) hk(r, c) = krylov.h(r, c);
      const linalg::DenseMatrix f = matrix_exponential(hk, tau);

      // Leading local-error term (Saad): beta * h_{k+1,k} * |e_k^T F e_1|.
      const double residual =
          krylov.happy_breakdown ? 0.0 : krylov.h(k, k - 1) * std::abs(f(k - 1, 0));
      const double error_estimate = beta * residual * tau;
      // A NaN iterate poisons the estimate; halving tau forever cannot fix
      // it, so refuse here instead of spinning in the step-size loop.
      GOP_CHECK_NUMERIC(std::isfinite(error_estimate),
                        "krylov_expv local error estimate is not finite");

      if (error_estimate <= options.tolerance * std::max(beta, 1.0) || tau <= remaining * 1e-12) {
        // Accept: w = beta * V_k (F e_1).
        std::vector<double> combination(n, 0.0);
        for (size_t i = 0; i < k; ++i) {
          linalg::axpy(beta * f(i, 0), krylov.basis[i], combination);
        }
        w = std::move(combination);
        if (GOP_FI_POINT(fi::SiteId::kKrylovIterateNan)) {
          w[0] = std::numeric_limits<double>::quiet_NaN();
        }
        remaining -= tau;
        tau *= 1.3;  // optimistic growth, halved again on the next rejection
        break;
      }
      tau *= 0.5;
    }
  }
  if (obs::enabled()) record_krylov_event(n, t, substeps, m);
  return w;
}

linalg::CsrMatrix krylov_transposed_generator(const Ctmc& chain) {
  // pi(t)^T = pi(0)^T exp(Q t)  <=>  pi(t) = exp(Q^T t) pi(0).
  linalg::CooBuilder builder(chain.state_count(), chain.state_count());
  const linalg::CsrMatrix& rates = chain.rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.exit_rates()[s] != 0.0) builder.add(s, s, -chain.exit_rates()[s]);
    for (size_t kk = rates.row_ptr()[s]; kk < rates.row_ptr()[s + 1]; ++kk) {
      builder.add(rates.col_idx()[kk], s, rates.values()[kk]);  // transposed
    }
  }
  return builder.build();
}

linalg::CsrMatrix krylov_augmented_transposed_generator(const Ctmc& chain) {
  // B = [[Q^T, 0], [I, 0]]: nnz(Q) + n entries — never a dense 2n x 2n block.
  const size_t n = chain.state_count();
  linalg::CooBuilder builder(2 * n, 2 * n);
  const linalg::CsrMatrix& rates = chain.rate_matrix();
  for (size_t s = 0; s < n; ++s) {
    if (chain.exit_rates()[s] != 0.0) builder.add(s, s, -chain.exit_rates()[s]);
    for (size_t kk = rates.row_ptr()[s]; kk < rates.row_ptr()[s + 1]; ++kk) {
      builder.add(rates.col_idx()[kk], s, rates.values()[kk]);  // transposed
    }
    builder.add(n + s, s, 1.0);  // dL_s/dt = pi_s
  }
  return builder.build();
}

std::vector<double> krylov_transient_distribution(const Ctmc& chain,
                                                  const linalg::CsrMatrix& transposed, double t,
                                                  const KrylovOptions& options) {
  GOP_REQUIRE(transposed.rows() == chain.state_count() &&
                  transposed.cols() == chain.state_count(),
              "transposed generator dimension mismatch");
  std::vector<double> pi = krylov_expv(transposed, t, chain.initial_distribution(), options);
  double mass = 0.0;
  for (double x : pi) mass += x;
  // The generator conserves probability exactly; the Krylov approximation may
  // drift by its tolerance, never by the slack. Anything larger (a spurious
  // breakdown, a corrupted iterate) must surface as a refusal the recovery
  // ladder can act on — never as a silently wrong distribution.
  GOP_CHECK_NUMERIC(std::abs(mass - 1.0) <= options.mass_check_slack,
                    "krylov transient distribution does not conserve probability mass");
  return pi;
}

std::vector<double> krylov_transient_distribution(const Ctmc& chain, double t,
                                                  const KrylovOptions& options) {
  return krylov_transient_distribution(chain, krylov_transposed_generator(chain), t, options);
}

std::vector<double> krylov_accumulated_occupancy(const Ctmc& chain,
                                                 const linalg::CsrMatrix& augmented, double t,
                                                 const KrylovOptions& options) {
  const size_t n = chain.state_count();
  GOP_REQUIRE(augmented.rows() == 2 * n && augmented.cols() == 2 * n,
              "augmented transposed generator dimension mismatch");
  std::vector<double> state(2 * n, 0.0);
  const std::vector<double>& pi0 = chain.initial_distribution();
  for (size_t s = 0; s < n; ++s) state[s] = pi0[s];

  const std::vector<double> evolved = krylov_expv(augmented, t, state, options);
  std::vector<double> occupancy(evolved.begin() + static_cast<ptrdiff_t>(n), evolved.end());
  double mass = 0.0;
  for (double x : occupancy) mass += x;
  // Occupancies distribute exactly t across the states; see the transient
  // wrapper above for why a violation must throw rather than return.
  GOP_CHECK_NUMERIC(std::abs(mass - t) <= options.mass_check_slack * std::max(1.0, t),
                    "krylov accumulated occupancy does not conserve time");
  return occupancy;
}

std::vector<double> krylov_accumulated_occupancy(const Ctmc& chain, double t,
                                                 const KrylovOptions& options) {
  return krylov_accumulated_occupancy(chain, krylov_augmented_transposed_generator(chain), t,
                                      options);
}

}  // namespace gop::markov
