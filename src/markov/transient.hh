#pragma once

/// \file transient.hh
/// Front door for transient (instant-of-time) CTMC reward solutions: picks
/// between the dense matrix exponential and uniformization, mirroring the
/// "expected instant-of-time reward at t" solver the paper uses (§5.2).
///
/// For repeated queries over a time grid — the phi-sweeps of §6 — use
/// TransientSession (session.hh), which shares the solver work across the
/// grid and across reward structures while staying bit-identical to these
/// pointwise entry points.

#include <vector>

#include "markov/ctmc.hh"
#include "markov/uniformization.hh"

namespace gop::markov {

enum class TransientMethod {
  /// Matrix exponential when the problem is stiff or the chain is small,
  /// uniformization otherwise.
  kAuto,
  kMatrixExponential,
  kUniformization,
};

struct TransientOptions {
  TransientMethod method = TransientMethod::kAuto;
  UniformizationOptions uniformization;
  /// kAuto picks uniformization only when Lambda*t is below this and the
  /// chain is large enough that a dense n^3 solve would dominate.
  double auto_stiffness_cutoff = 1e5;
  size_t auto_dense_max_states = 4096;
};

/// The engine the dispatcher would run for (chain, t). Exposed so the session
/// layer resolves exactly the way the pointwise solver does. Note that for
/// kAuto the choice depends only on the chain size, never on t, so one grid
/// resolves to one engine.
TransientMethod resolve_transient_method(const Ctmc& chain, double t,
                                         const TransientOptions& options);

/// State distribution at time t.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options = {});

/// Expected instant-of-time rate reward at t: sum_s pi_s(t) * reward[s].
double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options = {});

}  // namespace gop::markov
