#pragma once

/// \file transient.hh
/// Front door for transient (instant-of-time) CTMC reward solutions: picks
/// between the dense matrix exponential, uniformization and Krylov expm·v
/// via the SolverPlan layer (solver_plan.hh), mirroring the "expected
/// instant-of-time reward at t" solver the paper uses (§5.2).
///
/// For repeated queries over a time grid — the phi-sweeps of §6 — use
/// TransientSession (session.hh), which shares the solver work across the
/// grid and across reward structures while staying bit-identical to these
/// pointwise entry points.

#include <vector>

#include "linalg/dense_matrix.hh"
#include "markov/ctmc.hh"
#include "markov/krylov.hh"
#include "markov/matrix_exp.hh"
#include "markov/uniformization.hh"

namespace gop::markov {

enum class TransientMethod {
  /// Dense matrix exponential for small chains, uniformization for large
  /// non-stiff ones, Krylov expm·v for large stiff ones; see
  /// plan_transient (solver_plan.hh) for the exact cutoffs.
  kAuto,
  kMatrixExponential,
  kUniformization,
  kKrylov,
};

struct TransientOptions {
  TransientMethod method = TransientMethod::kAuto;
  UniformizationOptions uniformization;
  KrylovOptions krylov;
  /// kAuto picks uniformization for large chains only while Lambda*t stays
  /// below this; beyond it the Krylov engine takes over.
  double auto_stiffness_cutoff = 1e5;
  /// Largest chain kAuto still hands to the dense n^3 engine.
  size_t auto_dense_max_states = 4096;
};

/// The engine the dispatcher would run for (chain, t): a thin wrapper over
/// plan_transient (solver_plan.hh), where the kAuto cutoff logic lives.
/// For kAuto the choice depends on the chain size *and* on Lambda*t (large
/// stiff chains go to Krylov), so grid consumers must resolve against the
/// grid horizon — exactly what the SolverPlan layer does.
TransientMethod resolve_transient_method(const Ctmc& chain, double t,
                                         const TransientOptions& options);

/// State distribution at time t.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options = {});

/// Reusable state for repeated transient solves on ONE chain (the session
/// grid loop): the dense generator is materialized once and the Padé scratch
/// buffers are shared, so every dense solve after the first allocates only
/// its result vector. Results are bit-identical to the pointwise overload.
/// Do not share one workspace across different chains — the cached generator
/// belongs to the first chain it saw.
struct TransientWorkspace {
  ExpmWorkspace expm;
  linalg::DenseMatrix generator;
  bool generator_built = false;
};

/// State distribution at time t, using caller-owned scratch.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options,
                                           TransientWorkspace& ws);

/// Expected instant-of-time rate reward at t: sum_s pi_s(t) * reward[s].
double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options = {});

}  // namespace gop::markov
