#pragma once

/// \file transient.hh
/// Front door for transient (instant-of-time) CTMC reward solutions: picks
/// between the dense matrix exponential and uniformization, mirroring the
/// "expected instant-of-time reward at t" solver the paper uses (§5.2).
///
/// For repeated queries over a time grid — the phi-sweeps of §6 — use
/// TransientSession (session.hh), which shares the solver work across the
/// grid and across reward structures while staying bit-identical to these
/// pointwise entry points.

#include <vector>

#include "linalg/dense_matrix.hh"
#include "markov/ctmc.hh"
#include "markov/matrix_exp.hh"
#include "markov/uniformization.hh"

namespace gop::markov {

enum class TransientMethod {
  /// Matrix exponential when the problem is stiff or the chain is small,
  /// uniformization otherwise.
  kAuto,
  kMatrixExponential,
  kUniformization,
};

struct TransientOptions {
  TransientMethod method = TransientMethod::kAuto;
  UniformizationOptions uniformization;
  /// kAuto picks uniformization only when Lambda*t is below this and the
  /// chain is large enough that a dense n^3 solve would dominate.
  double auto_stiffness_cutoff = 1e5;
  size_t auto_dense_max_states = 4096;
};

/// The engine the dispatcher would run for (chain, t). Exposed so the session
/// layer resolves exactly the way the pointwise solver does. Note that for
/// kAuto the choice depends only on the chain size, never on t, so one grid
/// resolves to one engine.
TransientMethod resolve_transient_method(const Ctmc& chain, double t,
                                         const TransientOptions& options);

/// State distribution at time t.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options = {});

/// Reusable state for repeated transient solves on ONE chain (the session
/// grid loop): the dense generator is materialized once and the Padé scratch
/// buffers are shared, so every dense solve after the first allocates only
/// its result vector. Results are bit-identical to the pointwise overload.
/// Do not share one workspace across different chains — the cached generator
/// belongs to the first chain it saw.
struct TransientWorkspace {
  ExpmWorkspace expm;
  linalg::DenseMatrix generator;
  bool generator_built = false;
};

/// State distribution at time t, using caller-owned scratch.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options,
                                           TransientWorkspace& ws);

/// Expected instant-of-time rate reward at t: sum_s pi_s(t) * reward[s].
double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options = {});

}  // namespace gop::markov
