#pragma once

/// \file transient.hh
/// Front door for transient (instant-of-time) CTMC reward solutions: picks
/// between the dense matrix exponential and uniformization, mirroring the
/// "expected instant-of-time reward at t" solver the paper uses (§5.2).

#include <vector>

#include "markov/ctmc.hh"
#include "markov/uniformization.hh"

namespace gop::markov {

enum class TransientMethod {
  /// Matrix exponential when the problem is stiff or the chain is small,
  /// uniformization otherwise.
  kAuto,
  kMatrixExponential,
  kUniformization,
};

struct TransientOptions {
  TransientMethod method = TransientMethod::kAuto;
  UniformizationOptions uniformization;
  /// kAuto picks uniformization only when Lambda*t is below this and the
  /// chain is large enough that a dense n^3 solve would dominate.
  double auto_stiffness_cutoff = 1e5;
  size_t auto_dense_max_states = 4096;
};

/// State distribution at time t.
std::vector<double> transient_distribution(const Ctmc& chain, double t,
                                           const TransientOptions& options = {});

/// Expected instant-of-time rate reward at t: sum_s pi_s(t) * reward[s].
double transient_reward(const Ctmc& chain, const std::vector<double>& state_reward, double t,
                        const TransientOptions& options = {});

/// Distributions at several time points (`times` sorted non-decreasing).
/// With the matrix-exponential engine the solution advances incrementally,
/// pi(t_{i+1}) = pi(t_i) exp(Q (t_{i+1} - t_i)), and the step exponentials
/// are cached per distinct gap — a uniform phi-grid sweep costs one
/// exponential instead of one per point.
std::vector<std::vector<double>> transient_distribution_series(
    const Ctmc& chain, const std::vector<double>& times, const TransientOptions& options = {});

}  // namespace gop::markov
