#include "markov/sensitivity.hh"

#include <cmath>

#include "linalg/lu.hh"
#include "util/error.hh"

namespace gop::markov {

std::vector<double> steady_state_sensitivity(const Ctmc& chain, const std::vector<double>& pi,
                                             const linalg::DenseMatrix& dq) {
  const size_t n = chain.state_count();
  GOP_REQUIRE(pi.size() == n, "pi length mismatch");
  GOP_REQUIRE(dq.rows() == n && dq.cols() == n, "dQ dimension mismatch");

  // Right-hand side: b = -pi dQ.
  std::vector<double> b = dq.left_multiply(pi);
  for (double& v : b) v = -v;

  // Solve x Q = b with sum(x) = 0: replace the last column of Q by ones
  // (normalization) and the last entry of b by 0. The resulting square
  // system M^T x = b' is nonsingular for an irreducible chain.
  linalg::DenseMatrix m = chain.generator_dense();
  for (size_t r = 0; r < n; ++r) m(r, n - 1) = 1.0;
  b[n - 1] = 0.0;

  // x M = b  <=>  M^T x = b.
  return linalg::LuFactorization(m.transpose()).solve(b);
}

double steady_state_reward_sensitivity(const Ctmc& chain, const std::vector<double>& pi,
                                       const linalg::DenseMatrix& dq,
                                       const std::vector<double>& state_reward) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> dpi = steady_state_sensitivity(chain, pi, dq);
  double total = 0.0;
  for (size_t s = 0; s < dpi.size(); ++s) total += dpi[s] * state_reward[s];
  return total;
}

double finite_difference(const std::function<double(double)>& f, double x, double rel_step) {
  GOP_REQUIRE(static_cast<bool>(f), "function must be callable");
  GOP_REQUIRE(rel_step > 0.0, "rel_step must be positive");
  const double h = x != 0.0 ? std::abs(x) * rel_step : rel_step;
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

}  // namespace gop::markov
