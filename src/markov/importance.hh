#pragma once

/// \file importance.hh
/// Importance sampling for rare-event CTMC estimation. The GSU models mix
/// message-scale rates (~1e3/h) with fault-scale rates (~1e-4/h), so crude
/// Monte Carlo sees almost no fault paths within a mission. Rate biasing
/// multiplies the rates of designated "rare" transitions during simulation
/// and corrects with the exact path likelihood ratio
///
///   L = prod_jumps (true rate / biased rate)
///       * exp( -(true exit - biased exit) integrated over sojourns )
///
/// which keeps every estimator unbiased while concentrating samples on the
/// interesting paths.

#include <functional>
#include <vector>

#include "markov/ctmc.hh"
#include "sim/replication.hh"
#include "sim/rng.hh"

namespace gop::markov {

struct ImportanceOptions {
  /// Multiplier applied to the rates of transitions selected by `is_rare`.
  double bias_factor = 100.0;
};

/// One biased trajectory: simulates the chain with biased rates until t_end,
/// returns the terminal state and the accumulated likelihood ratio.
struct BiasedPathOutcome {
  size_t state = 0;
  double likelihood = 1.0;
};

BiasedPathOutcome simulate_biased(const Ctmc& chain, sim::Rng& rng, double t_end,
                                  const std::function<bool(const Transition&)>& is_rare,
                                  const ImportanceOptions& options = {});

/// Importance-sampled estimate of the instant-of-time reward at t. The
/// returned statistics are over the weighted samples; the mean is unbiased
/// for E[reward(X_t)].
sim::ReplicationResult is_instant_reward(const Ctmc& chain, const std::vector<double>& reward,
                                         double t,
                                         const std::function<bool(const Transition&)>& is_rare,
                                         const ImportanceOptions& is_options = {},
                                         const sim::ReplicationOptions& options = {});

}  // namespace gop::markov
