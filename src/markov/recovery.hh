#pragma once

/// \file recovery.hh
/// Policy-driven graceful degradation around the transient / accumulated /
/// steady-state dispatchers (docs/robustness.md). The `_checked` entry points
/// run the same engines as the plain ones, but climb a recovery ladder when
/// an engine throws or returns a result that fails its mass invariant:
///
///   1. retry the engine (tightening the Fox-Glynn epsilon, or widening the
///      iteration budget for the iterative steady-state engines),
///   2. fall back to an alternative engine (uniformization <-> Pade /
///      augmented exponential; GTH <-> power <-> Gauss-Seidel),
///   3. throw a structured gop::SolverError carrying the full attempt log.
///
/// Every result carries a Certificate naming the engine that actually
/// produced it, so a degraded answer is never mistaken for a first-try one;
/// each degradation also emits a gop::obs kRecovery event and bumps the
/// always-on counters `markov.recovery.retries` / `markov.recovery.fallbacks`.
/// With no fault and no degradation, a `_checked` call returns bitwise the
/// same vector as its unchecked twin.

#include <string>
#include <vector>

#include "markov/accumulated.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"

namespace gop::markov {

struct SolverPlan;

struct RecoveryPolicy {
  /// Additional attempts per engine after the first (0 = no retries).
  size_t max_retries = 1;
  /// Each uniformization retry multiplies the Fox-Glynn epsilon by this
  /// (floored at kMinPoissonEpsilon); the dense engines retry unchanged,
  /// which still clears transient (non-deterministic) faults.
  double epsilon_tighten = 1e-3;
  /// Each iterative steady-state retry multiplies max_iterations by this.
  size_t iteration_widen = 4;
  /// Permit step 2 of the ladder (cross-engine fallback).
  bool allow_engine_fallback = true;
  /// Mass-invariant slack for validating a candidate result: probability
  /// vectors must sum to 1 within this, occupancy vectors to t within
  /// slack * max(1, t), and every entry must be finite and >= -slack.
  double validation_slack = 1e-6;
};

/// Provenance of a `_checked` result: what the dispatcher wanted, what
/// actually produced the answer, and how hard the ladder had to work.
struct Certificate {
  std::string requested_engine;  ///< engine the dispatcher resolved to
  std::string engine;            ///< engine that produced the result
  size_t retries = 0;            ///< failed attempts before the success
  bool fallback = false;         ///< result came from a non-requested engine
  bool degraded = false;         ///< retries > 0 || fallback
  /// Residual accuracy bound of the successful attempt: the Fox-Glynn
  /// epsilon for uniformization, the convergence tolerance for the iterative
  /// steady-state engines, 0 for the direct dense engines.
  double error_bound = 0.0;
  std::vector<std::string> attempts;  ///< "engine: reason" per failed attempt
};

struct TransientResult {
  std::vector<double> distribution;
  Certificate certificate;
};

struct AccumulatedResult {
  std::vector<double> occupancy;
  Certificate certificate;
};

struct SteadyStateResult {
  std::vector<double> distribution;
  Certificate certificate;
};

/// transient_distribution with the recovery ladder. Throws gop::SolverError
/// ("transient") when every rung fails.
TransientResult transient_distribution_checked(const Ctmc& chain, double t,
                                               const TransientOptions& options = {},
                                               const RecoveryPolicy& policy = {});

/// accumulated_occupancy with the recovery ladder ("accumulated").
AccumulatedResult accumulated_occupancy_checked(const Ctmc& chain, double t,
                                                const AccumulatedOptions& options = {},
                                                const RecoveryPolicy& policy = {});

/// steady_state_distribution with the recovery ladder ("steady_state").
SteadyStateResult steady_state_distribution_checked(const Ctmc& chain,
                                                    const SteadyStateOptions& options = {},
                                                    const RecoveryPolicy& policy = {});

/// Validation predicates the ladder applies to every candidate result (also
/// the assertion surface of the fault-campaign tests): finite entries,
/// entries >= -slack, and total mass 1 (respectively t, within
/// slack * max(1, t)).
bool is_probability_vector(const std::vector<double>& v, double slack);
bool is_occupancy_vector(const std::vector<double>& v, double t, double slack);

/// Dispatcher engine labels exactly as they appear in certificates and obs
/// events ("uniformization", "pade-expm", "krylov-expv", "augmented-expm",
/// "krylov-augmented", "gth", ...). Throws gop::InternalError for the
/// unresolved kAuto placeholders.
const char* engine_name(TransientMethod method);
const char* engine_name(AccumulatedMethod method);
const char* engine_name(SteadyStateMethod method);

namespace detail {
/// Bumps the always-on recovery counters and (when tracing) records the
/// kRecovery event for a degraded solve; shared by the checked dispatchers
/// and the session layer.
void note_degraded(const char* solver, const Certificate& cert, size_t states, double t);

/// The rung order the ladder climbs, derived from the SolverPlan: the plan's
/// engine first, then the peers that can actually serve the chain — a dense
/// rung is only offered while the chain fits the dense cutoff, mirroring the
/// steady-state ladder's GTH skip. Shared by the checked dispatchers and the
/// session RecoveryPolicy constructors so there is exactly one fallback
/// policy.
std::vector<TransientMethod> transient_ladder(const SolverPlan& plan,
                                              const TransientOptions& options,
                                              const RecoveryPolicy& policy);
std::vector<AccumulatedMethod> accumulated_ladder(const SolverPlan& plan,
                                                  const AccumulatedOptions& options,
                                                  const RecoveryPolicy& policy);

/// Per-retry option adjustment for one rung: uniformization retries tighten
/// the Fox-Glynn epsilon, Krylov retries tighten the sub-step tolerance, the
/// dense engines retry unchanged (clearing transient faults).
void tighten_for_retry(TransientOptions& forced, const RecoveryPolicy& policy);
void tighten_for_retry(AccumulatedOptions& forced, const RecoveryPolicy& policy);

/// Residual accuracy bound of a successful attempt, by engine.
double error_bound_of(const TransientOptions& forced);
double error_bound_of(const AccumulatedOptions& forced);
}  // namespace detail

}  // namespace gop::markov
