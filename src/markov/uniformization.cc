#include "markov/uniformization.hh"

#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "fi/fi.hh"
#include "linalg/vector_ops.hh"
#include "markov/fox_glynn.hh"
#include "markov/solver_stats.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

/// One event per propagation pass: the Fox-Glynn window, the DTMC steps the
/// loop actually ran (iterations < window right when steady-state detection
/// cut it short), and the stiffness Lambda*t.
[[gnu::cold]] [[gnu::noinline]] void record_pass_event(const Ctmc& chain, double t,
                                                       double lambda_t,
                                                       const PoissonWindow& window, size_t steps,
                                                       bool steady_state_detected) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kUniformizationPass;
  event.method = "uniformization";
  event.states = chain.state_count();
  event.t = t;
  event.lambda_t = lambda_t;
  event.fox_glynn_left = window.left;
  event.fox_glynn_right = window.right();
  event.iterations = steps;
  event.steady_state_detected = steady_state_detected;
  obs::record_event(std::move(event));
}

}  // namespace

void uniformized_step(const Ctmc& chain, double lambda, const std::vector<double>& v,
                      std::vector<double>& next) {
  chain.rate_matrix().left_multiply(v, next);
  const std::vector<double>& exit = chain.exit_rates();
  for (size_t s = 0; s < v.size(); ++s) {
    next[s] = v[s] + (next[s] - v[s] * exit[s]) / lambda;
  }
}

double uniformization_rate(const Ctmc& chain, const UniformizationOptions& options) {
  // A chain whose states are all absorbing has pi(t) = pi(0); pick a dummy
  // positive rate so the window machinery still works.
  const double base = chain.max_exit_rate();
  return base > 0.0 ? base * options.rate_slack : 1.0;
}

std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options) {
  UniformizationWorkspace workspace;
  return uniformized_transient_distribution(chain, t, options, workspace);
}

std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options,
                                                       UniformizationWorkspace& workspace) {
  GOP_REQUIRE(t >= 0.0 && std::isfinite(t), "time must be non-negative and finite");
  if (t == 0.0) return chain.initial_distribution();
  solver_stats().uniformization_passes.fetch_add(1, std::memory_order_relaxed);

  const double lambda = uniformization_rate(chain, options);
  const double lambda_t = lambda * t;
  GOP_CHECK_NUMERIC(lambda_t <= options.max_lambda_t,
                    str_format("uniformization refused: Lambda*t = %.3g exceeds the configured "
                               "maximum %.3g; use the matrix-exponential solver for stiff "
                               "problems",
                               lambda_t, options.max_lambda_t));

  const PoissonWindow window = poisson_window(lambda_t, options.epsilon);

  std::vector<double>& v = workspace.iterate;
  std::vector<double>& next = workspace.scratch;
  v = chain.initial_distribution();
  std::vector<double> result(chain.state_count(), 0.0);
  double used_mass = 0.0;
  size_t steps = 0;
  bool detected = false;

  for (size_t k = 0; k <= window.right(); ++k) {
    if (k >= window.left) {
      const double w = window.weights[k - window.left];
      linalg::axpy(w, v, result);
      used_mass += w;
    }
    if (k == window.right()) break;

    uniformized_step(chain, lambda, v, next);
    ++steps;
    if (GOP_FI_POINT(fi::SiteId::kUniformizationIterateNan)) {
      next[0] = std::numeric_limits<double>::quiet_NaN();
    }
    // Steady-state detection: once the DTMC iterate stops moving, all further
    // terms equal the current vector; fold the remaining Poisson mass in.
    if (linalg::max_abs_diff(next, v) * static_cast<double>(chain.state_count()) <
        options.steady_state_tol) {
      linalg::axpy(1.0 - used_mass, next, result);
      used_mass = 1.0;
      detected = true;
      break;
    }
    std::swap(v, next);
  }

  if (used_mass < 1.0) {
    // Truncated mass (at most epsilon): assign it to the last iterate so the
    // result stays a probability vector. The renormalization is only sound
    // when the deficit really is the epsilon-bounded Fox-Glynn tail — a
    // window that lost real mass (or a non-finite iterate) must fail loudly
    // here, not be papered over.
    GOP_CHECK_NUMERIC(used_mass >= 1.0 - options.mass_check_slack,
                      str_format("uniformization: Poisson window covered only %.6g of the "
                                 "probability mass; the Fox-Glynn window is defective",
                                 used_mass));
    linalg::axpy(1.0 - used_mass, v, result);
  }
  const double mass = std::accumulate(result.begin(), result.end(), 0.0);
  GOP_CHECK_NUMERIC(std::abs(mass - 1.0) <= options.mass_check_slack,
                    str_format("uniformization: transient distribution mass %.6g violates the "
                               "probability-vector invariant",
                               mass));
  if (obs::enabled()) record_pass_event(chain, t, lambda_t, window, steps, detected);
  return result;
}

std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options) {
  UniformizationWorkspace workspace;
  return uniformized_accumulated_occupancy(chain, t, options, workspace);
}

std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options,
                                                      UniformizationWorkspace& workspace) {
  GOP_REQUIRE(t >= 0.0 && std::isfinite(t), "time must be non-negative and finite");
  std::vector<double> occupancy(chain.state_count(), 0.0);
  if (t == 0.0) return occupancy;
  solver_stats().uniformization_passes.fetch_add(1, std::memory_order_relaxed);

  const double lambda = uniformization_rate(chain, options);
  const double lambda_t = lambda * t;
  GOP_CHECK_NUMERIC(lambda_t <= options.max_lambda_t,
                    str_format("uniformization refused: Lambda*t = %.3g exceeds the configured "
                               "maximum %.3g; use the matrix-exponential solver for stiff "
                               "problems",
                               lambda_t, options.max_lambda_t));

  const PoissonWindow window = poisson_window(lambda_t, options.epsilon);

  // \int_0^t pi(s) ds = (1/Lambda) * sum_k  P(N > k) * pi0 P^k, with
  // N ~ Poisson(Lambda t); sum_k P(N > k) = E[N] = Lambda t, which bounds the
  // tail we fold in at steady-state detection.
  std::vector<double>& v = workspace.iterate;
  std::vector<double>& next = workspace.scratch;
  v = chain.initial_distribution();
  double cdf = 0.0;
  double tail_sum = 0.0;  // running sum of P(N > k) over processed k
  size_t steps = 0;
  bool detected = false;

  for (size_t k = 0; k <= window.right(); ++k) {
    if (k >= window.left) cdf += window.weights[k - window.left];
    const double tail = std::max(0.0, 1.0 - cdf);
    linalg::axpy(tail / lambda, v, occupancy);
    tail_sum += tail;
    if (k == window.right()) break;

    uniformized_step(chain, lambda, v, next);
    ++steps;
    if (GOP_FI_POINT(fi::SiteId::kUniformizationIterateNan)) {
      next[0] = std::numeric_limits<double>::quiet_NaN();
    }
    if (linalg::max_abs_diff(next, v) * static_cast<double>(chain.state_count()) <
        options.steady_state_tol) {
      const double remaining = std::max(0.0, lambda_t - tail_sum);
      linalg::axpy(remaining / lambda, next, occupancy);
      tail_sum = lambda_t;
      detected = true;
      break;
    }
    std::swap(v, next);
  }
  // Total occupancy over all states is exactly t (time is conserved); a
  // truncated window inflates the Poisson tail terms and a NaN iterate
  // poisons the sum, so this one invariant catches both.
  const double mass = std::accumulate(occupancy.begin(), occupancy.end(), 0.0);
  GOP_CHECK_NUMERIC(std::abs(mass - t) <= options.mass_check_slack * t,
                    str_format("uniformization: accumulated occupancy sums to %.6g over horizon "
                               "%.6g, violating the time-conservation invariant",
                               mass, t));
  if (obs::enabled()) record_pass_event(chain, t, lambda_t, window, steps, detected);
  return occupancy;
}

}  // namespace gop::markov
