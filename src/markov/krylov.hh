#pragma once

/// \file krylov.hh
/// Krylov-subspace approximation of the action of the matrix exponential,
/// w = exp(t A) v, after Sidje's EXPOKIT: an Arnoldi basis of modest
/// dimension projects A onto a small Hessenberg matrix whose dense
/// exponential is cheap; adaptive sub-stepping controls the error. This is
/// the transient engine for chains too large for dense n^3 work but too
/// stiff for plain uniformization — dispatched as TransientMethod::kKrylov /
/// AccumulatedMethod::kKrylov by the SolverPlan layer (solver_plan.hh).

#include <vector>

#include "linalg/csr_matrix.hh"
#include "markov/ctmc.hh"

namespace gop::markov {

struct KrylovOptions {
  /// Arnoldi basis dimension (clamped to the problem size).
  size_t basis_dimension = 30;
  /// Target local error per sub-step, relative to ||v||.
  double tolerance = 1e-12;
  /// Safety cap on sub-steps.
  size_t max_substeps = 100'000;
  /// Mass-conservation slack for the CTMC wrappers below: a transient
  /// distribution must sum to 1 within this, an occupancy to t within
  /// slack * max(1, t). Violations raise gop::NumericalError (never a silent
  /// wrong answer), which the recovery ladder turns into an engine fallback.
  double mass_check_slack = 1e-6;
};

/// Computes w = exp(t A) v for a square sparse A.
std::vector<double> krylov_expv(const linalg::CsrMatrix& a, double t,
                                const std::vector<double>& v, const KrylovOptions& options = {});

/// Q^T as a CSR matrix (diagonal included): the operator krylov_expv acts
/// with for transient solves. Exposed so the session layer builds it once per
/// grid; the entries are identical however often it is rebuilt, so sharing it
/// preserves bit-identity with the pointwise wrapper.
linalg::CsrMatrix krylov_transposed_generator(const Ctmc& chain);

/// The augmented operator B = [[Q^T, 0], [I, 0]] (2n x 2n, sparse): with
/// d/dt [pi; L] = B [pi; L], one exp(t B) action on [pi(0); 0] yields the
/// accumulated occupancy L(t) in the second half — the sparse counterpart of
/// the dense augmented-generator exponential (accumulated.hh).
linalg::CsrMatrix krylov_augmented_transposed_generator(const Ctmc& chain);

/// Transient CTMC distribution via Krylov: pi(t)^T = pi(0)^T exp(Q t), i.e.
/// krylov_expv on Q^T. Validates mass conservation (see
/// KrylovOptions::mass_check_slack).
std::vector<double> krylov_transient_distribution(const Ctmc& chain, double t,
                                                  const KrylovOptions& options = {});

/// Same, acting with a prebuilt krylov_transposed_generator(chain) — the
/// session grid loop's entry point; bit-identical to the overload above.
std::vector<double> krylov_transient_distribution(const Ctmc& chain,
                                                  const linalg::CsrMatrix& transposed, double t,
                                                  const KrylovOptions& options = {});

/// Accumulated occupancy L(t) via one Krylov action of the augmented
/// operator. Validates time conservation (sum L = t within the slack).
std::vector<double> krylov_accumulated_occupancy(const Ctmc& chain, double t,
                                                 const KrylovOptions& options = {});

/// Same, acting with a prebuilt krylov_augmented_transposed_generator(chain).
std::vector<double> krylov_accumulated_occupancy(const Ctmc& chain,
                                                 const linalg::CsrMatrix& augmented, double t,
                                                 const KrylovOptions& options = {});

}  // namespace gop::markov
