#pragma once

/// \file krylov.hh
/// Krylov-subspace approximation of the action of the matrix exponential,
/// w = exp(t A) v, after Sidje's EXPOKIT: an Arnoldi basis of modest
/// dimension projects A onto a small Hessenberg matrix whose dense
/// exponential is cheap; adaptive sub-stepping controls the error. This is
/// the transient engine for chains too large for dense n^3 work but too
/// stiff for plain uniformization.

#include <vector>

#include "linalg/csr_matrix.hh"
#include "markov/ctmc.hh"
#include "markov/transient.hh"

namespace gop::markov {

struct KrylovOptions {
  /// Arnoldi basis dimension (clamped to the problem size).
  size_t basis_dimension = 30;
  /// Target local error per sub-step, relative to ||v||.
  double tolerance = 1e-12;
  /// Safety cap on sub-steps.
  size_t max_substeps = 100'000;
};

/// Computes w = exp(t A) v for a square sparse A.
std::vector<double> krylov_expv(const linalg::CsrMatrix& a, double t,
                                const std::vector<double>& v, const KrylovOptions& options = {});

/// Transient CTMC distribution via Krylov: pi(t)^T = pi(0)^T exp(Q t), i.e.
/// krylov_expv on Q^T.
std::vector<double> krylov_transient_distribution(const Ctmc& chain, double t,
                                                  const KrylovOptions& options = {});

}  // namespace gop::markov
