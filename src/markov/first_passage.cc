#include "markov/first_passage.hh"

#include <cmath>

#include "markov/absorbing.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

void validate_target(const Ctmc& chain, const std::vector<bool>& target) {
  GOP_REQUIRE(target.size() == chain.state_count(), "target mask length mismatch");
  bool any = false;
  for (bool b : target) any |= b;
  GOP_REQUIRE(any, "target set must not be empty");
}

}  // namespace

Ctmc make_target_absorbing(const Ctmc& chain, const std::vector<bool>& target) {
  validate_target(chain, target);
  std::vector<Transition> kept;
  kept.reserve(chain.transitions().size());
  for (const Transition& tr : chain.transitions()) {
    if (!target[tr.from]) kept.push_back(tr);
  }
  return Ctmc(chain.state_count(), std::move(kept), chain.initial_distribution());
}

double first_passage_cdf(const Ctmc& chain, const std::vector<bool>& target, double t,
                         const TransientOptions& options) {
  validate_target(chain, target);
  const Ctmc modified = make_target_absorbing(chain, target);
  const std::vector<double> pi = transient_distribution(modified, t, options);
  double mass = 0.0;
  for (size_t s = 0; s < pi.size(); ++s) {
    if (target[s]) mass += pi[s];
  }
  return mass;
}

FirstPassageSummary first_passage_summary(const Ctmc& chain, const std::vector<bool>& target) {
  validate_target(chain, target);
  const Ctmc modified = make_target_absorbing(chain, target);

  // Every state of the modified chain must lead to absorption; a recurrent
  // non-absorbing component shows up as a singular (or negative-occupancy)
  // fundamental system in analyze_absorbing.
  AbsorbingAnalysis analysis;
  try {
    analysis = analyze_absorbing(modified);
  } catch (const NumericalError& e) {
    throw ModelError(std::string("first_passage_summary: the chain does not absorb almost "
                                 "surely once the target is made absorbing (") +
                     e.what() + ")");
  }

  FirstPassageSummary summary;
  summary.mean_time_to_absorption = analysis.mean_time_to_absorption;
  summary.std_time_to_absorption =
      std::sqrt(std::max(0.0, analysis.variance_time_to_absorption()));
  for (size_t i = 0; i < analysis.absorbing_states.size(); ++i) {
    if (target[analysis.absorbing_states[i]]) {
      summary.hit_probability += analysis.absorption_probability[i];
    }
  }
  return summary;
}

double first_passage_quantile(const Ctmc& chain, const std::vector<bool>& target, double p,
                              double rel_tol, const TransientOptions& options) {
  GOP_REQUIRE(p > 0.0 && p < 1.0, "quantile level must be in (0,1)");
  GOP_REQUIRE(rel_tol > 0.0, "rel_tol must be positive");
  validate_target(chain, target);

  if (first_passage_cdf(chain, target, 0.0, options) >= p) return 0.0;

  // Exponential bracketing from the natural time scale of the chain.
  double hi = 1.0 / std::max(chain.max_exit_rate(), 1e-12);
  double lo = 0.0;
  int doublings = 0;
  while (first_passage_cdf(chain, target, hi, options) < p) {
    lo = hi;
    hi *= 2.0;
    GOP_REQUIRE(++doublings < 128,
                str_format("quantile level %.3g appears to exceed the eventual hit probability",
                           p));
  }

  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (first_passage_cdf(chain, target, mid, options) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<bool> target_mask(size_t state_count, const std::vector<size_t>& states) {
  std::vector<bool> mask(state_count, false);
  for (size_t s : states) {
    GOP_REQUIRE(s < state_count, "target state index out of range");
    mask[s] = true;
  }
  return mask;
}

}  // namespace gop::markov
