#pragma once

/// \file first_passage.hh
/// First-passage (hitting-time) analysis for CTMCs: the distribution, mean
/// and quantiles of the time until the chain first enters a target set of
/// states. Built by making the target absorbing and reusing the transient
/// and absorbing-chain machinery.
///
/// In this library it backs time-to-failure / time-to-detection studies of
/// the GSU models (e.g. "by when does guarded operation have a 99% chance of
/// having caught a faulty upgrade?"), complementing the paper's fixed-horizon
/// measures.

#include <vector>

#include "markov/ctmc.hh"
#include "markov/transient.hh"

namespace gop::markov {

/// Eventual-hit probability and unconditional mean absorption time of the
/// chain in which `target` states are made absorbing.
struct FirstPassageSummary {
  /// Probability of ever entering the target set (absorption elsewhere or a
  /// recurrent non-target component makes this < 1).
  double hit_probability = 0.0;

  /// Mean time until the modified chain absorbs (into the target *or* into a
  /// pre-existing absorbing state outside it). When hit_probability == 1
  /// this is the mean first-passage time into the target.
  double mean_time_to_absorption = 0.0;

  /// Standard deviation of the absorption time (phase-type moments).
  double std_time_to_absorption = 0.0;
};

/// The chain with every target state's outgoing transitions removed.
/// `target.size()` must equal `chain.state_count()` and at least one state
/// must be targeted.
Ctmc make_target_absorbing(const Ctmc& chain, const std::vector<bool>& target);

/// P(first passage into `target` <= t), from the chain's initial
/// distribution. Initial mass already inside the target counts as hit at 0.
double first_passage_cdf(const Ctmc& chain, const std::vector<bool>& target, double t,
                         const TransientOptions& options = {});

/// Summary quantities via absorbing-chain analysis. Throws gop::ModelError
/// when the modified chain has a recurrent component that never absorbs
/// (the mean would be infinite).
FirstPassageSummary first_passage_summary(const Ctmc& chain, const std::vector<bool>& target);

/// Smallest t with CDF(t) >= p, found by exponential bracketing plus
/// bisection to relative tolerance `rel_tol`. Requires 0 < p < 1 and
/// p < hit probability (else gop::InvalidArgument).
double first_passage_quantile(const Ctmc& chain, const std::vector<bool>& target, double p,
                              double rel_tol = 1e-6, const TransientOptions& options = {});

/// Convenience: marks the states whose index satisfies `predicate`.
std::vector<bool> target_mask(size_t state_count, const std::vector<size_t>& states);

}  // namespace gop::markov
