#include "markov/solver_plan.hh"

#include <cmath>

#include "markov/recovery.hh"

namespace gop::markov {

const char* to_string(StorageForm form) {
  return form == StorageForm::kDense ? "dense" : "sparse";
}

namespace {

/// Largest finite non-negative grid entry (0 when none). Invalid entries are
/// skipped, not rejected: reporting them is preflight's PRE001 job and the
/// dispatchers GOP_REQUIRE them; planning just needs the horizon.
double grid_horizon(std::span<const double> times) {
  double horizon = 0.0;
  for (double t : times) {
    if (std::isfinite(t) && t > horizon) horizon = t;
  }
  return horizon;
}

double fill_ratio(const Ctmc& chain) {
  const double n = static_cast<double>(chain.state_count());
  return static_cast<double>(chain.rate_matrix().nnz()) / (n * n);
}

/// Analytic over-estimate of the Fox–Glynn right edge: the Poisson mass above
/// lambda_t + 6 sqrt(lambda_t) is far below any practical epsilon, so the
/// exact window (fox_glynn.hh) always fits under this. Advisory only.
size_t window_estimate(double lambda_t) {
  if (lambda_t <= 0.0) return 0;
  return static_cast<size_t>(std::ceil(lambda_t + 6.0 * std::sqrt(lambda_t + 1.0) + 8.0));
}

/// THE kAuto transient policy — the only copy. Dimension picks dense vs
/// sparse (a chain at or under auto_dense_max_states always takes the dense
/// engine, keeping existing models bit-identical); among the sparse engines
/// Lambda*t picks uniformization (cheap while the window is short) vs Krylov
/// (stiffness-robust expm·v action).
TransientMethod resolved_transient(size_t states, double lambda_t,
                                   const TransientOptions& options) {
  if (options.method != TransientMethod::kAuto) return options.method;
  if (states <= options.auto_dense_max_states) return TransientMethod::kMatrixExponential;
  if (lambda_t <= options.auto_stiffness_cutoff) return TransientMethod::kUniformization;
  return TransientMethod::kKrylov;
}

/// THE kAuto accumulated policy — same shape, augmented-exponential cutoff.
AccumulatedMethod resolved_accumulated(size_t states, double lambda_t,
                                       const AccumulatedOptions& options) {
  if (options.method != AccumulatedMethod::kAuto) return options.method;
  if (states <= options.auto_dense_max_states) return AccumulatedMethod::kAugmentedExponential;
  if (lambda_t <= options.auto_stiffness_cutoff) return AccumulatedMethod::kUniformization;
  return AccumulatedMethod::kKrylov;
}

/// THE kAuto steady-state policy: exact subtraction-free GTH while the dense
/// elimination is affordable, power iteration on the uniformized DTMC beyond.
SteadyStateMethod resolved_steady_state(size_t states, const SteadyStateOptions& options) {
  if (options.method != SteadyStateMethod::kAuto) return options.method;
  return states <= options.auto_gth_max_states ? SteadyStateMethod::kGth
                                               : SteadyStateMethod::kPower;
}

StorageForm storage_of(TransientMethod method) {
  return method == TransientMethod::kMatrixExponential ? StorageForm::kDense
                                                       : StorageForm::kSparse;
}

StorageForm storage_of(AccumulatedMethod method) {
  return method == AccumulatedMethod::kAugmentedExponential ? StorageForm::kDense
                                                            : StorageForm::kSparse;
}

StorageForm storage_of(SteadyStateMethod method) {
  return method == SteadyStateMethod::kGth ? StorageForm::kDense : StorageForm::kSparse;
}

SolverPlan base_plan(const Ctmc& chain, double horizon) {
  SolverPlan plan;
  plan.states = chain.state_count();
  plan.fill = fill_ratio(chain);
  plan.horizon = horizon;
  plan.lambda_t = chain.max_exit_rate() * horizon;
  return plan;
}

void fill_uniformization_facts(SolverPlan& plan, const Ctmc& chain,
                               const UniformizationOptions& options) {
  plan.uniformization_lambda = uniformization_rate(chain, options);
  plan.uniformization_lambda_t = plan.uniformization_lambda * plan.horizon;
  plan.window_estimate = window_estimate(plan.uniformization_lambda_t);
}

}  // namespace

SolverPlan plan_transient(const Ctmc& chain, double t, const TransientOptions& options) {
  SolverPlan plan = base_plan(chain, std::isfinite(t) && t > 0.0 ? t : 0.0);
  plan.transient = resolved_transient(plan.states, plan.lambda_t, options);
  plan.storage = storage_of(plan.transient);
  plan.engine = engine_name(plan.transient);
  if (plan.transient == TransientMethod::kUniformization) {
    fill_uniformization_facts(plan, chain, options.uniformization);
  }
  return plan;
}

SolverPlan plan_transient(const Ctmc& chain, std::span<const double> times,
                          const TransientOptions& options) {
  return plan_transient(chain, grid_horizon(times), options);
}

SolverPlan plan_accumulated(const Ctmc& chain, double t, const AccumulatedOptions& options) {
  SolverPlan plan = base_plan(chain, std::isfinite(t) && t > 0.0 ? t : 0.0);
  plan.accumulated = resolved_accumulated(plan.states, plan.lambda_t, options);
  plan.storage = storage_of(plan.accumulated);
  plan.engine = engine_name(plan.accumulated);
  if (plan.accumulated == AccumulatedMethod::kUniformization) {
    fill_uniformization_facts(plan, chain, options.uniformization);
  }
  return plan;
}

SolverPlan plan_accumulated(const Ctmc& chain, std::span<const double> times,
                            const AccumulatedOptions& options) {
  return plan_accumulated(chain, grid_horizon(times), options);
}

SolverPlan plan_steady_state(const Ctmc& chain, const SteadyStateOptions& options) {
  SolverPlan plan = base_plan(chain, 0.0);
  plan.steady_state = resolved_steady_state(plan.states, options);
  plan.storage = storage_of(plan.steady_state);
  plan.engine = engine_name(plan.steady_state);
  return plan;
}

}  // namespace gop::markov
