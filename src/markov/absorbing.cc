#include "markov/absorbing.hh"

#include "linalg/lu.hh"
#include "util/error.hh"

namespace gop::markov {

AbsorbingAnalysis analyze_absorbing(const Ctmc& chain) {
  AbsorbingAnalysis analysis;
  const size_t n = chain.state_count();

  std::vector<size_t> position(n, SIZE_MAX);  // index within transient_states
  for (size_t s = 0; s < n; ++s) {
    if (chain.is_absorbing(s)) {
      analysis.absorbing_states.push_back(s);
    } else {
      position[s] = analysis.transient_states.size();
      analysis.transient_states.push_back(s);
    }
  }
  GOP_REQUIRE(!analysis.absorbing_states.empty(),
              "analyze_absorbing requires at least one absorbing state");

  const size_t m = analysis.transient_states.size();
  if (m == 0) {
    // Initial distribution already sits on absorbing states.
    for (size_t a : analysis.absorbing_states) {
      analysis.absorption_probability.push_back(chain.initial_distribution()[a]);
    }
    return analysis;
  }

  // Transient generator block Q_TT.
  linalg::DenseMatrix q_tt(m, m, 0.0);
  for (size_t j = 0; j < m; ++j) q_tt(j, j) = -chain.exit_rates()[analysis.transient_states[j]];
  for (const Transition& tr : chain.transitions()) {
    if (tr.from == tr.to) continue;
    const size_t pf = position[tr.from];
    const size_t pt = position[tr.to];
    if (pf != SIZE_MAX && pt != SIZE_MAX) q_tt(pf, pt) += tr.rate;
  }

  // Expected occupancy before absorption: x^T Q_TT = -pi0_T, i.e.
  // Q_TT^T x = -pi0_T.
  std::vector<double> rhs(m, 0.0);
  for (size_t j = 0; j < m; ++j) rhs[j] = -chain.initial_distribution()[analysis.transient_states[j]];
  const linalg::LuFactorization lu(q_tt.transpose());
  analysis.expected_time_in_state = lu.solve(rhs);

  analysis.mean_time_to_absorption = 0.0;
  for (double v : analysis.expected_time_in_state) {
    GOP_CHECK_NUMERIC(v > -1e-9, "negative expected occupancy: chain may not absorb surely");
    analysis.mean_time_to_absorption += v;
  }

  // Phase-type moments: per-state means m1 solve (-Q_TT) m1 = 1, second
  // moments m2 solve (-Q_TT) m2 = 2 m1; the chain-level moments follow by
  // weighting with the initial transient mass.
  {
    linalg::DenseMatrix negated = q_tt;
    negated *= -1.0;
    const linalg::LuFactorization lu_neg(std::move(negated));
    const std::vector<double> m1 = lu_neg.solve(std::vector<double>(m, 1.0));
    std::vector<double> twice_m1 = m1;
    for (double& v : twice_m1) v *= 2.0;
    const std::vector<double> m2 = lu_neg.solve(twice_m1);
    analysis.second_moment_time_to_absorption = 0.0;
    for (size_t j = 0; j < m; ++j) {
      analysis.second_moment_time_to_absorption +=
          chain.initial_distribution()[analysis.transient_states[j]] * m2[j];
    }
  }

  // Absorption probabilities: flow into each absorbing state plus any initial
  // mass already there.
  std::vector<size_t> absorbing_position(n, SIZE_MAX);
  for (size_t i = 0; i < analysis.absorbing_states.size(); ++i) {
    absorbing_position[analysis.absorbing_states[i]] = i;
  }
  analysis.absorption_probability.assign(analysis.absorbing_states.size(), 0.0);
  for (size_t i = 0; i < analysis.absorbing_states.size(); ++i) {
    analysis.absorption_probability[i] = chain.initial_distribution()[analysis.absorbing_states[i]];
  }
  for (const Transition& tr : chain.transitions()) {
    if (tr.from == tr.to) continue;
    const size_t pf = position[tr.from];
    const size_t pa = absorbing_position[tr.to];
    if (pf != SIZE_MAX && pa != SIZE_MAX) {
      analysis.absorption_probability[pa] += analysis.expected_time_in_state[pf] * tr.rate;
    }
  }
  return analysis;
}

}  // namespace gop::markov
