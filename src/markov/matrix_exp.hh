#pragma once

/// \file matrix_exp.hh
/// Dense matrix exponential via Padé [13/13] approximation with scaling and
/// squaring (Higham 2005). This is the default transient engine for the
/// paper's models: their generators are stiff (||Q||t up to ~2.5e7) which
/// rules out plain uniformization, while their state spaces are small enough
/// that an O(n^3 log ||Q||t) dense method is instantaneous.
///
/// Two call shapes exist. The value-returning overloads are the historical
/// pointwise API; they borrow a thread-local pooled workspace internally. The
/// workspace overloads let session loops (markov/session.hh) thread one
/// ExpmWorkspace through a whole time grid so every solve after the first is
/// allocation-free — the property the "markov.expm_workspace_allocs" counter
/// pins down in tests. Both shapes produce bit-identical results: the fused
/// kernels keep the historical per-element summation order
/// (docs/performance.md).

#include <cstddef>

#include "linalg/dense_matrix.hh"
#include "linalg/lu.hh"

namespace gop::markov {

/// Reusable scratch for matrix_exponential: eleven n x n buffers plus an LU
/// factorization. After the first solve at a given dimension, repeated solves
/// perform no heap allocation (buffers reshape in place; growing to a larger
/// dimension reallocates once and is counted on
/// "markov.expm_workspace_allocs", while allocation-free reuse ticks
/// "markov.expm_workspace_reuses").
struct ExpmWorkspace {
  ExpmWorkspace() = default;
  ExpmWorkspace(const ExpmWorkspace&) = delete;
  ExpmWorkspace& operator=(const ExpmWorkspace&) = delete;
  ExpmWorkspace(ExpmWorkspace&&) = default;
  ExpmWorkspace& operator=(ExpmWorkspace&&) = default;

  /// Pre-sizes every buffer for dimension n and updates the workspace
  /// counters. Called by the solver; idempotent per dimension.
  void ensure(size_t n);

  /// Scratch buffers, internal to the solver implementation. The only member
  /// meant for callers is `result`, which the workspace overloads below
  /// return by reference; it stays valid until the next solve through this
  /// workspace.
  linalg::DenseMatrix input, scaled, a2, a4, a6, poly_u, poly_v, u, v, tmp, result;
  linalg::LuFactorization lu;

  /// Last dimension ensure() completed for; lets steady-state ensure() calls
  /// skip the per-buffer reshape walk entirely. Managed by ensure().
  size_t ensured_dim = 0;
};

/// exp(A) for a square matrix.
linalg::DenseMatrix matrix_exponential(const linalg::DenseMatrix& a);

/// exp(A t).
linalg::DenseMatrix matrix_exponential(const linalg::DenseMatrix& a, double t);

/// exp(A) computed in `ws`; returns ws.result. `a` must not alias a workspace
/// buffer (ws.input excepted — the exp(A t) overload relies on that).
const linalg::DenseMatrix& matrix_exponential(const linalg::DenseMatrix& a, ExpmWorkspace& ws);

/// exp(A t) computed in `ws`; returns ws.result.
const linalg::DenseMatrix& matrix_exponential(const linalg::DenseMatrix& a, double t,
                                              ExpmWorkspace& ws);

namespace detail {

/// Dimension cap for the shared thread-local workspace behind the
/// value-returning overloads: beyond this, pooling would pin ~a dozen large
/// buffers per thread for the process lifetime, so callers fall back to the
/// caller-owned (typically stack-scoped) workspace instead.
constexpr size_t kPooledExpmMaxDim = 256;

/// The thread-local pooled workspace when dim fits under the cap, otherwise
/// `fallback`.
ExpmWorkspace& pooled_expm_workspace(size_t dim, ExpmWorkspace& fallback);

}  // namespace detail

}  // namespace gop::markov
