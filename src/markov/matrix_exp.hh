#pragma once

/// \file matrix_exp.hh
/// Dense matrix exponential via Padé [13/13] approximation with scaling and
/// squaring (Higham 2005). This is the default transient engine for the
/// paper's models: their generators are stiff (||Q||t up to ~2.5e7) which
/// rules out plain uniformization, while their state spaces are small enough
/// that an O(n^3 log ||Q||t) dense method is instantaneous.

#include "linalg/dense_matrix.hh"

namespace gop::markov {

/// exp(A) for a square matrix.
linalg::DenseMatrix matrix_exponential(const linalg::DenseMatrix& a);

/// exp(A t).
linalg::DenseMatrix matrix_exponential(const linalg::DenseMatrix& a, double t);

}  // namespace gop::markov
