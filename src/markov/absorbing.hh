#pragma once

/// \file absorbing.hh
/// Absorbing-chain analysis: absorption probabilities, expected time to
/// absorption and expected total time per transient state, via direct solves
/// against the transient submatrix (the "fundamental matrix" systems).
/// RMGd and RMNd are absorbing chains, so this supports both sanity checks
/// and the long-horizon limits of the paper's dependability measures.

#include <vector>

#include "markov/ctmc.hh"

namespace gop::markov {

struct AbsorbingAnalysis {
  /// Indices of transient (non-absorbing) and absorbing states in the chain.
  std::vector<size_t> transient_states;
  std::vector<size_t> absorbing_states;

  /// absorption_probability[i] is the probability, starting from the chain's
  /// initial distribution, of eventually being absorbed in
  /// absorbing_states[i]. Sums to 1 when absorption is certain.
  std::vector<double> absorption_probability;

  /// expected_time_in_state[j] is the expected total time spent in
  /// transient_states[j] before absorption.
  std::vector<double> expected_time_in_state;

  /// Expected time to absorption from the initial distribution.
  double mean_time_to_absorption = 0.0;

  /// E[T^2] of the absorption time (phase-type second moment), from the
  /// initial distribution.
  double second_moment_time_to_absorption = 0.0;

  /// Var[T] of the absorption time.
  double variance_time_to_absorption() const {
    return second_moment_time_to_absorption - mean_time_to_absorption * mean_time_to_absorption;
  }
};

/// Analyzes an absorbing CTMC. Requires at least one absorbing state and
/// that absorption is certain from every initial state with positive mass
/// (violations surface as gop::NumericalError from the singular solve).
AbsorbingAnalysis analyze_absorbing(const Ctmc& chain);

}  // namespace gop::markov
