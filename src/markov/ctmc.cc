#include "markov/ctmc.hh"

#include <cmath>

#include "linalg/vector_ops.hh"
#include "util/error.hh"

namespace gop::markov {

Ctmc::Ctmc(size_t state_count, std::vector<Transition> transitions, std::vector<double> initial)
    : state_count_(state_count), transitions_(std::move(transitions)), initial_(std::move(initial)) {
  GOP_REQUIRE(state_count_ > 0, "a CTMC needs at least one state");
  GOP_REQUIRE(initial_.size() == state_count_, "initial distribution length mismatch");
  GOP_REQUIRE(linalg::is_probability_vector(initial_, 1e-9),
              "initial distribution must be a probability vector");

  linalg::CooBuilder builder(state_count_, state_count_);
  for (const Transition& t : transitions_) {
    GOP_REQUIRE(t.from < state_count_ && t.to < state_count_, "transition endpoint out of range");
    GOP_REQUIRE(t.rate > 0.0 && std::isfinite(t.rate), "transition rates must be positive finite");
    if (t.from != t.to) builder.add(t.from, t.to, t.rate);
  }
  rates_ = builder.build();

  exit_rates_.assign(state_count_, 0.0);
  for (size_t s = 0; s < state_count_; ++s) {
    exit_rates_[s] = rates_.row_sum(s);
    max_exit_rate_ = std::max(max_exit_rate_, exit_rates_[s]);
  }
}

bool Ctmc::is_absorbing(size_t state) const {
  GOP_REQUIRE(state < state_count_, "state index out of range");
  return exit_rates_[state] == 0.0;
}

linalg::DenseMatrix Ctmc::generator_dense() const {
  GOP_CHECK_NUMERIC(state_count_ <= kDenseGeneratorStateLimit,
                    "dense generator materialization refused: the chain exceeds "
                    "Ctmc::kDenseGeneratorStateLimit states; use a sparse engine "
                    "(uniformization or Krylov)");
  linalg::DenseMatrix q = rates_.to_dense();
  for (size_t s = 0; s < state_count_; ++s) q(s, s) -= exit_rates_[s];
  return q;
}

Ctmc Ctmc::with_initial(std::vector<double> initial) const {
  return Ctmc(state_count_, transitions_, std::move(initial));
}

}  // namespace gop::markov
