#include "markov/recovery.hh"

#include <cmath>
#include <new>
#include <numeric>
#include <utility>

#include "markov/fox_glynn.hh"
#include "markov/solver_plan.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace gop::markov {

const char* engine_name(TransientMethod method) {
  switch (method) {
    case TransientMethod::kUniformization: return "uniformization";
    case TransientMethod::kMatrixExponential: return "pade-expm";
    case TransientMethod::kKrylov: return "krylov-expv";
    case TransientMethod::kAuto: break;
  }
  throw InternalError("unresolved transient method in recovery ladder");
}

const char* engine_name(AccumulatedMethod method) {
  switch (method) {
    case AccumulatedMethod::kUniformization: return "uniformization";
    case AccumulatedMethod::kAugmentedExponential: return "augmented-expm";
    case AccumulatedMethod::kKrylov: return "krylov-augmented";
    case AccumulatedMethod::kAuto: break;
  }
  throw InternalError("unresolved accumulated method in recovery ladder");
}

const char* engine_name(SteadyStateMethod method) {
  switch (method) {
    case SteadyStateMethod::kGth: return "gth";
    case SteadyStateMethod::kPower: return "power";
    case SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
    case SteadyStateMethod::kAuto: break;
  }
  throw InternalError("unresolved steady-state method in recovery ladder");
}

namespace detail {

/// Accounting for a solve that only succeeded degraded: the always-on
/// counters make degradation visible even without tracing; the kRecovery
/// event (when tracing is on) carries the full attempt log. Cold + noinline:
/// never reached on the clean path.
[[gnu::cold]] [[gnu::noinline]] void note_degraded(const char* solver, const Certificate& cert,
                                                   size_t states, double t) {
  static obs::Counter& retries = obs::counter("markov.recovery.retries");
  static obs::Counter& fallbacks = obs::counter("markov.recovery.fallbacks");
  retries.add(cert.retries);
  if (cert.fallback) fallbacks.add();
  if (!obs::enabled()) return;
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kRecovery;
  event.method = cert.engine;
  event.states = states;
  event.t = t;
  event.retries = cert.retries;
  event.degraded = true;
  event.detail = solver;
  for (const std::string& attempt : cert.attempts) {
    event.detail += " | ";
    event.detail += attempt;
  }
  obs::record_event(std::move(event));
}

std::vector<TransientMethod> transient_ladder(const SolverPlan& plan,
                                              const TransientOptions& options,
                                              const RecoveryPolicy& policy) {
  const TransientMethod primary = plan.transient;
  std::vector<TransientMethod> ladder{primary};
  if (!policy.allow_engine_fallback) return ladder;
  // A dense O(n^3) rung is no rescue for a chain the plan already judged too
  // large for it (same reasoning as the steady-state ladder's GTH skip).
  const bool dense_fits = plan.states <= options.auto_dense_max_states;
  switch (primary) {
    case TransientMethod::kMatrixExponential:
      ladder.push_back(TransientMethod::kUniformization);
      break;
    case TransientMethod::kUniformization:
      ladder.push_back(dense_fits ? TransientMethod::kMatrixExponential
                                  : TransientMethod::kKrylov);
      break;
    case TransientMethod::kKrylov:
      ladder.push_back(TransientMethod::kUniformization);
      if (dense_fits) ladder.push_back(TransientMethod::kMatrixExponential);
      break;
    case TransientMethod::kAuto:
      break;  // unreachable: the plan never resolves to kAuto
  }
  return ladder;
}

std::vector<AccumulatedMethod> accumulated_ladder(const SolverPlan& plan,
                                                  const AccumulatedOptions& options,
                                                  const RecoveryPolicy& policy) {
  const AccumulatedMethod primary = plan.accumulated;
  std::vector<AccumulatedMethod> ladder{primary};
  if (!policy.allow_engine_fallback) return ladder;
  const bool dense_fits = plan.states <= options.auto_dense_max_states;
  switch (primary) {
    case AccumulatedMethod::kAugmentedExponential:
      ladder.push_back(AccumulatedMethod::kUniformization);
      break;
    case AccumulatedMethod::kUniformization:
      ladder.push_back(dense_fits ? AccumulatedMethod::kAugmentedExponential
                                  : AccumulatedMethod::kKrylov);
      break;
    case AccumulatedMethod::kKrylov:
      ladder.push_back(AccumulatedMethod::kUniformization);
      if (dense_fits) ladder.push_back(AccumulatedMethod::kAugmentedExponential);
      break;
    case AccumulatedMethod::kAuto:
      break;  // unreachable: the plan never resolves to kAuto
  }
  return ladder;
}

void tighten_for_retry(TransientOptions& forced, const RecoveryPolicy& policy) {
  if (forced.method == TransientMethod::kUniformization) {
    forced.uniformization.epsilon =
        std::max(kMinPoissonEpsilon, forced.uniformization.epsilon * policy.epsilon_tighten);
  } else if (forced.method == TransientMethod::kKrylov) {
    forced.krylov.tolerance = std::max(1e-16, forced.krylov.tolerance * policy.epsilon_tighten);
  }
}

void tighten_for_retry(AccumulatedOptions& forced, const RecoveryPolicy& policy) {
  if (forced.method == AccumulatedMethod::kUniformization) {
    forced.uniformization.epsilon =
        std::max(kMinPoissonEpsilon, forced.uniformization.epsilon * policy.epsilon_tighten);
  } else if (forced.method == AccumulatedMethod::kKrylov) {
    forced.krylov.tolerance = std::max(1e-16, forced.krylov.tolerance * policy.epsilon_tighten);
  }
}

double error_bound_of(const TransientOptions& forced) {
  if (forced.method == TransientMethod::kUniformization) return forced.uniformization.epsilon;
  if (forced.method == TransientMethod::kKrylov) return forced.krylov.tolerance;
  return 0.0;
}

double error_bound_of(const AccumulatedOptions& forced) {
  if (forced.method == AccumulatedMethod::kUniformization) return forced.uniformization.epsilon;
  if (forced.method == AccumulatedMethod::kKrylov) return forced.krylov.tolerance;
  return 0.0;
}

}  // namespace detail

bool is_probability_vector(const std::vector<double>& v, double slack) {
  double sum = 0.0;
  for (double x : v) {
    if (!std::isfinite(x) || x < -slack) return false;
    sum += x;
  }
  return std::abs(sum - 1.0) <= slack;
}

bool is_occupancy_vector(const std::vector<double>& v, double t, double slack) {
  const double scale = slack * std::max(1.0, t);
  double sum = 0.0;
  for (double x : v) {
    if (!std::isfinite(x) || x < -scale) return false;
    sum += x;
  }
  return std::abs(sum - t) <= scale;
}

TransientResult transient_distribution_checked(const Ctmc& chain, double t,
                                               const TransientOptions& options,
                                               const RecoveryPolicy& policy) {
  GOP_REQUIRE(t >= 0.0 && std::isfinite(t), "time must be non-negative and finite");
  if (t == 0.0) {
    TransientResult out{chain.initial_distribution(), {}};
    out.certificate.requested_engine = "initial";
    out.certificate.engine = "initial";
    return out;
  }

  const SolverPlan plan = plan_transient(chain, t, options);
  const std::vector<TransientMethod> ladder = detail::transient_ladder(plan, options, policy);

  Certificate cert;
  cert.requested_engine = plan.engine;
  std::vector<std::string> attempts;
  std::string last_cause;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const char* name = engine_name(ladder[rung]);
    TransientOptions forced = options;
    forced.method = ladder[rung];
    for (size_t retry = 0; retry <= policy.max_retries; ++retry) {
      if (retry > 0) detail::tighten_for_retry(forced, policy);
      try {
        std::vector<double> candidate = transient_distribution(chain, t, forced);
        if (!is_probability_vector(candidate, policy.validation_slack)) {
          throw NumericalError("result failed the probability-vector validation");
        }
        cert.engine = name;
        cert.fallback = rung > 0;
        cert.retries = attempts.size();
        cert.degraded = cert.fallback || cert.retries > 0;
        cert.error_bound = detail::error_bound_of(forced);
        cert.attempts = attempts;
        if (cert.degraded) detail::note_degraded("transient", cert, chain.state_count(), t);
        return TransientResult{std::move(candidate), std::move(cert)};
      } catch (const InternalError&) {
        throw;  // library bug: the ladder must not absorb it
      } catch (const ModelError&) {
        throw;  // structural diagnosis: no engine can fix the model
      } catch (const std::bad_alloc&) {
        last_cause = "allocation failure";
        attempts.push_back(std::string(name) + ": allocation failure");
      } catch (const std::exception& ex) {
        last_cause = ex.what();
        attempts.push_back(std::string(name) + ": " + ex.what());
      }
    }
  }
  throw SolverError("transient", std::move(attempts), std::move(last_cause));
}

AccumulatedResult accumulated_occupancy_checked(const Ctmc& chain, double t,
                                                const AccumulatedOptions& options,
                                                const RecoveryPolicy& policy) {
  GOP_REQUIRE(t >= 0.0 && std::isfinite(t), "time must be non-negative and finite");
  if (t == 0.0) {
    AccumulatedResult out{std::vector<double>(chain.state_count(), 0.0), {}};
    out.certificate.requested_engine = "initial";
    out.certificate.engine = "initial";
    return out;
  }

  const SolverPlan plan = plan_accumulated(chain, t, options);
  const std::vector<AccumulatedMethod> ladder = detail::accumulated_ladder(plan, options, policy);

  Certificate cert;
  cert.requested_engine = plan.engine;
  std::vector<std::string> attempts;
  std::string last_cause;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const char* name = engine_name(ladder[rung]);
    AccumulatedOptions forced = options;
    forced.method = ladder[rung];
    for (size_t retry = 0; retry <= policy.max_retries; ++retry) {
      if (retry > 0) detail::tighten_for_retry(forced, policy);
      try {
        std::vector<double> candidate = accumulated_occupancy(chain, t, forced);
        if (!is_occupancy_vector(candidate, t, policy.validation_slack)) {
          throw NumericalError("result failed the occupancy-vector validation");
        }
        cert.engine = name;
        cert.fallback = rung > 0;
        cert.retries = attempts.size();
        cert.degraded = cert.fallback || cert.retries > 0;
        cert.error_bound = detail::error_bound_of(forced);
        cert.attempts = attempts;
        if (cert.degraded) detail::note_degraded("accumulated", cert, chain.state_count(), t);
        return AccumulatedResult{std::move(candidate), std::move(cert)};
      } catch (const InternalError&) {
        throw;
      } catch (const ModelError&) {
        throw;
      } catch (const std::bad_alloc&) {
        last_cause = "allocation failure";
        attempts.push_back(std::string(name) + ": allocation failure");
      } catch (const std::exception& ex) {
        last_cause = ex.what();
        attempts.push_back(std::string(name) + ": " + ex.what());
      }
    }
  }
  throw SolverError("accumulated", std::move(attempts), std::move(last_cause));
}

SteadyStateResult steady_state_distribution_checked(const Ctmc& chain,
                                                    const SteadyStateOptions& options,
                                                    const RecoveryPolicy& policy) {
  const SteadyStateMethod primary = resolve_steady_state_method(chain, options);
  std::vector<SteadyStateMethod> ladder{primary};
  if (policy.allow_engine_fallback) {
    for (SteadyStateMethod method : {SteadyStateMethod::kGth, SteadyStateMethod::kPower,
                                     SteadyStateMethod::kGaussSeidel}) {
      if (method == primary) continue;
      // A dense O(n^3) elimination is no rescue for a chain the dispatcher
      // already judged too large for it.
      if (method == SteadyStateMethod::kGth &&
          chain.state_count() > options.auto_gth_max_states) {
        continue;
      }
      ladder.push_back(method);
    }
  }

  Certificate cert;
  cert.requested_engine = engine_name(primary);
  std::vector<std::string> attempts;
  std::string last_cause;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const char* name = engine_name(ladder[rung]);
    SteadyStateOptions forced = options;
    forced.method = ladder[rung];
    const bool iterative = ladder[rung] != SteadyStateMethod::kGth;
    for (size_t retry = 0; retry <= policy.max_retries; ++retry) {
      // A stalled iteration is not helped by a tighter tolerance — widen the
      // budget instead so a slowly-mixing chain gets room to converge.
      if (retry > 0 && iterative) forced.max_iterations *= policy.iteration_widen;
      try {
        std::vector<double> candidate = steady_state_distribution(chain, forced);
        if (!is_probability_vector(candidate, policy.validation_slack)) {
          throw NumericalError("result failed the probability-vector validation");
        }
        cert.engine = name;
        cert.fallback = rung > 0;
        cert.retries = attempts.size();
        cert.degraded = cert.fallback || cert.retries > 0;
        cert.error_bound = iterative ? forced.tolerance : 0.0;
        cert.attempts = attempts;
        if (cert.degraded) detail::note_degraded("steady_state", cert, chain.state_count(), 0.0);
        return SteadyStateResult{std::move(candidate), std::move(cert)};
      } catch (const InternalError&) {
        throw;
      } catch (const ModelError&) {
        throw;
      } catch (const std::bad_alloc&) {
        last_cause = "allocation failure";
        attempts.push_back(std::string(name) + ": allocation failure");
      } catch (const std::exception& ex) {
        last_cause = ex.what();
        attempts.push_back(std::string(name) + ": " + ex.what());
      }
    }
  }
  throw SolverError("steady_state", std::move(attempts), std::move(last_cause));
}

}  // namespace gop::markov
