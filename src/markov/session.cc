#include "markov/session.hh"

#include <cmath>
#include <new>

#include "linalg/vector_ops.hh"
#include "markov/fox_glynn.hh"
#include "markov/solver_stats.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

void validate_grid(const std::vector<double>& times) {
  for (size_t i = 1; i < times.size(); ++i) {
    GOP_REQUIRE(times[i] >= times[i - 1], "times must be sorted non-decreasing");
  }
  if (!times.empty()) {
    GOP_REQUIRE(times.front() >= 0.0, "times must be non-negative");
  }
}

void check_lambda_t(double lambda_t, const UniformizationOptions& options) {
  GOP_CHECK_NUMERIC(lambda_t <= options.max_lambda_t,
                    str_format("uniformization refused: Lambda*t = %.3g exceeds the configured "
                               "maximum %.3g; use the matrix-exponential solver for stiff "
                               "problems",
                               lambda_t, options.max_lambda_t));
}

/// The shared Krylov sequence of the uniformized DTMC: v_k = pi0 P^k together
/// with the per-step convergence gaps the pointwise solver would have seen.
/// Recording the gaps lets every per-time replay reproduce the pointwise
/// steady-state-detection decision bit for bit.
struct UniformizedSequence {
  double lambda = 1.0;
  std::vector<std::vector<double>> iterates;  ///< v_0 .. v_S
  std::vector<double> diffs;                  ///< max_abs_diff(v_{k+1}, v_k), k in [0, S)
};

/// Longest Fox-Glynn window any grid time needs (0 when every time is 0).
size_t max_window_right(const std::vector<double>& times, double lambda,
                        const UniformizationOptions& options) {
  size_t target = 0;
  double previous = -1.0;
  for (double t : times) {
    if (t == 0.0 || t == previous) continue;
    previous = t;
    GOP_REQUIRE(std::isfinite(t), "time must be non-negative and finite");
    check_lambda_t(lambda * t, options);
    target = std::max(target, poisson_window(lambda * t, options.epsilon).right());
  }
  return target;
}

/// One event per session build: which engine serves the grid, how many grid
/// points share the work, and (for the shared-sequence path) how long the
/// recorded iterate sequence is.
[[gnu::cold]] [[gnu::noinline]] void record_session_event(obs::SolverEventKind kind,
                                                          const SolverPlan& plan,
                                                          const std::vector<double>& times,
                                                          const char* method, double lambda_t,
                                                          size_t target) {
  obs::SolverEvent event;
  event.kind = kind;
  event.method = method;
  event.storage = to_string(plan.storage);
  event.states = plan.states;
  event.t = times.empty() ? 0.0 : times.back();
  event.lambda_t = lambda_t;
  event.fox_glynn_right = target;
  event.grid_points = times.size();
  obs::record_event(std::move(event));
}

/// Propagates v_0 .. v_target (stopping early once the iterate is steady,
/// exactly where the pointwise loop would stop consuming fresh iterates).
UniformizedSequence build_sequence(const Ctmc& chain, const UniformizationOptions& options,
                                   size_t target) {
  solver_stats().uniformization_passes.fetch_add(1, std::memory_order_relaxed);
  UniformizedSequence sequence;
  sequence.lambda = uniformization_rate(chain, options);
  sequence.iterates.reserve(target + 1);
  sequence.iterates.push_back(chain.initial_distribution());
  sequence.diffs.reserve(target);

  std::vector<double> next(chain.state_count());
  for (size_t k = 0; k < target; ++k) {
    uniformized_step(chain, sequence.lambda, sequence.iterates.back(), next);
    const double diff = linalg::max_abs_diff(next, sequence.iterates.back());
    sequence.iterates.push_back(next);
    sequence.diffs.push_back(diff);
    if (diff * static_cast<double>(chain.state_count()) < options.steady_state_tol) break;
  }
  return sequence;
}

/// Replays the pointwise uniformized_transient_distribution loop for one time
/// against the shared iterate sequence: same weights, same summation order,
/// same steady-state decisions, hence the same bits.
std::vector<double> replay_transient(const Ctmc& chain, const UniformizedSequence& sequence,
                                     double t, const UniformizationOptions& options) {
  const double lambda_t = sequence.lambda * t;
  check_lambda_t(lambda_t, options);
  const PoissonWindow window = poisson_window(lambda_t, options.epsilon);
  // The sequence was sized from these same windows, so it covers the window
  // unless it legitimately stopped early at steady state; anything else (a
  // corrupted sizing probe) must fail loudly, not read past the iterates.
  GOP_CHECK_NUMERIC(window.right() < sequence.iterates.size() ||
                        (!sequence.diffs.empty() &&
                         sequence.diffs.back() * static_cast<double>(chain.state_count()) <
                             options.steady_state_tol),
                    "session replay: shared iterate sequence is shorter than the Poisson window");

  std::vector<double> result(chain.state_count(), 0.0);
  double used_mass = 0.0;
  for (size_t k = 0; k <= window.right(); ++k) {
    if (k >= window.left) {
      const double w = window.weights[k - window.left];
      linalg::axpy(w, sequence.iterates[k], result);
      used_mass += w;
    }
    if (k == window.right()) break;

    if (sequence.diffs[k] * static_cast<double>(chain.state_count()) <
        options.steady_state_tol) {
      linalg::axpy(1.0 - used_mass, sequence.iterates[k + 1], result);
      used_mass = 1.0;
      break;
    }
  }
  // Mirror of the pointwise deficit check: folding more than the truncation
  // slack into the last iterate would silently misattribute probability.
  GOP_CHECK_NUMERIC(used_mass >= 1.0 - options.mass_check_slack,
                    "session replay: Poisson window mass deficit exceeds the slack");
  if (used_mass < 1.0) {
    linalg::axpy(1.0 - used_mass, sequence.iterates[window.right()], result);
  }
  return result;
}

/// Replays the pointwise uniformized_accumulated_occupancy loop; see
/// replay_transient.
std::vector<double> replay_accumulated(const Ctmc& chain, const UniformizedSequence& sequence,
                                       double t, const UniformizationOptions& options) {
  const double lambda_t = sequence.lambda * t;
  check_lambda_t(lambda_t, options);
  const PoissonWindow window = poisson_window(lambda_t, options.epsilon);
  GOP_CHECK_NUMERIC(window.right() < sequence.iterates.size() ||
                        (!sequence.diffs.empty() &&
                         sequence.diffs.back() * static_cast<double>(chain.state_count()) <
                             options.steady_state_tol),
                    "session replay: shared iterate sequence is shorter than the Poisson window");

  std::vector<double> occupancy(chain.state_count(), 0.0);
  double cdf = 0.0;
  double tail_sum = 0.0;
  for (size_t k = 0; k <= window.right(); ++k) {
    if (k >= window.left) cdf += window.weights[k - window.left];
    const double tail = std::max(0.0, 1.0 - cdf);
    linalg::axpy(tail / sequence.lambda, sequence.iterates[k], occupancy);
    tail_sum += tail;
    if (k == window.right()) break;

    if (sequence.diffs[k] * static_cast<double>(chain.state_count()) <
        options.steady_state_tol) {
      const double remaining = std::max(0.0, lambda_t - tail_sum);
      linalg::axpy(remaining / sequence.lambda, sequence.iterates[k + 1], occupancy);
      break;
    }
  }
  // Mirror of the pointwise time-conservation check: L(t) must distribute
  // exactly t across the states (a truncated window inflates the tails, a
  // NaN iterate voids the comparison — both must surface here).
  double mass = 0.0;
  for (double l : occupancy) mass += l;
  GOP_CHECK_NUMERIC(std::abs(mass - t) <= options.mass_check_slack * std::max(1.0, t),
                    "session replay: accumulated occupancy does not conserve time");
  return occupancy;
}

/// Fills `out[i]` for every grid time: zeros-time entries via `at_zero`,
/// duplicates by sharing the previous solution, everything else via `solve`.
template <typename AtZero, typename Solve>
void solve_grid(const std::vector<double>& times, std::vector<std::vector<double>>& out,
                const AtZero& at_zero, const Solve& solve) {
  out.resize(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    if (i > 0 && times[i] == times[i - 1]) {
      out[i] = out[i - 1];  // exact duplicate: share the solution
    } else if (times[i] == 0.0) {
      out[i] = at_zero();
    } else {
      out[i] = solve(times[i]);
    }
  }
}

double series_dot(const std::vector<double>& x, const std::vector<double>& y) {
  return linalg::dot(x, y);
}

}  // namespace

TransientSession::TransientSession(const Ctmc& chain, std::vector<double> times,
                                   const TransientOptions& options)
    : chain_(&chain), times_(std::move(times)) {
  build(options);
}

void TransientSession::build(const TransientOptions& options) {
  const Ctmc& chain = *chain_;
  GOP_OBS_SPAN("markov.transient_session");
  solver_stats().transient_sessions.fetch_add(1, std::memory_order_relaxed);
  validate_grid(times_);
  if (times_.empty()) return;

  // One grid resolves to one SolverPlan: for kAuto the choice depends on the
  // chain size *and* on Lambda*t at the grid horizon (plan_transient), and
  // resolving against the largest time is exactly what per-time resolution
  // would do for every positive grid time.
  plan_ = plan_transient(chain, times_, options);
  const TransientMethod method = plan_.transient;

  if (method == TransientMethod::kUniformization && times_.back() > 0.0) {
    const double lambda = uniformization_rate(chain, options.uniformization);
    const size_t target = max_window_right(times_, lambda, options.uniformization);
    if ((target + 1) * chain.state_count() <= options.uniformization.max_session_doubles) {
      if (obs::enabled()) {
        record_session_event(obs::SolverEventKind::kTransientSession, plan_, times_,
                             "uniformization-shared", lambda * times_.back(), target);
      }
      const UniformizedSequence sequence =
          build_sequence(chain, options.uniformization, target);
      solve_grid(
          times_, distributions_, [&] { return chain.initial_distribution(); },
          [&](double t) { return replay_transient(chain, sequence, t, options.uniformization); });
      return;
    }
    // Grid too long for the recorded sequence: independent per-time solves
    // (the workspace removes the per-step allocations; bits are unchanged).
    if (obs::enabled()) {
      record_session_event(obs::SolverEventKind::kTransientSession, plan_, times_,
                           "uniformization-fallback", lambda * times_.back(), target);
    }
    UniformizationWorkspace workspace;
    solve_grid(
        times_, distributions_, [&] { return chain.initial_distribution(); },
        [&](double t) {
          return uniformized_transient_distribution(chain, t, options.uniformization, workspace);
        });
    return;
  }

  if (method == TransientMethod::kKrylov && times_.back() > 0.0) {
    if (obs::enabled()) {
      record_session_event(obs::SolverEventKind::kTransientSession, plan_, times_, "krylov-expv",
                           plan_.lambda_t, 0);
    }
    // One sparse transposed generator serves every grid time's expv action;
    // identical matrix content makes each point bit-identical to the
    // pointwise solve.
    const linalg::CsrMatrix qt = krylov_transposed_generator(chain);
    solve_grid(
        times_, distributions_, [&] { return chain.initial_distribution(); },
        [&](double t) { return krylov_transient_distribution(chain, qt, t, options.krylov); });
    return;
  }

  // Dense path: one from-zero solve per *distinct* time, shared across
  // duplicates (and across every reward structure dotted against it).
  if (obs::enabled()) {
    record_session_event(obs::SolverEventKind::kTransientSession, plan_, times_, "pade-expm", 0.0,
                         0);
  }
  TransientWorkspace workspace;  // generator + Padé scratch shared across the grid
  solve_grid(
      times_, distributions_, [&] { return chain.initial_distribution(); },
      [&](double t) { return transient_distribution(chain, t, options, workspace); });
}

TransientSession::TransientSession(const Ctmc& chain, std::vector<double> times,
                                   const TransientOptions& options, const RecoveryPolicy& policy)
    : chain_(&chain), times_(std::move(times)) {
  validate_grid(times_);  // grid preconditions stay InvalidArgument, not ladder failures
  const double horizon = times_.empty() ? 0.0 : times_.back();
  const SolverPlan plan = plan_transient(chain, times_, options);
  const std::vector<TransientMethod> ladder = detail::transient_ladder(plan, options, policy);

  Certificate cert;
  cert.requested_engine = plan.engine;
  std::vector<std::string> attempts;
  std::string last_cause;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const char* name = engine_name(ladder[rung]);
    TransientOptions forced = options;
    forced.method = ladder[rung];
    for (size_t retry = 0; retry <= policy.max_retries; ++retry) {
      if (retry > 0) detail::tighten_for_retry(forced, policy);
      try {
        distributions_.clear();
        build(forced);
        for (const std::vector<double>& pi : distributions_) {
          if (!is_probability_vector(pi, policy.validation_slack)) {
            throw NumericalError("a grid distribution failed the probability-vector validation");
          }
        }
        cert.engine = name;
        cert.fallback = rung > 0;
        cert.retries = attempts.size();
        cert.degraded = cert.fallback || cert.retries > 0;
        cert.error_bound = detail::error_bound_of(forced);
        cert.attempts = attempts;
        if (cert.degraded) {
          detail::note_degraded("transient_session", cert, chain.state_count(), horizon);
        }
        certificate_ = std::move(cert);
        return;
      } catch (const InternalError&) {
        throw;  // library bug: the ladder must not absorb it
      } catch (const ModelError&) {
        throw;  // structural diagnosis: no engine can fix the model
      } catch (const std::bad_alloc&) {
        last_cause = "allocation failure";
        attempts.push_back(std::string(name) + ": allocation failure");
      } catch (const std::exception& ex) {
        last_cause = ex.what();
        attempts.push_back(std::string(name) + ": " + ex.what());
      }
    }
  }
  throw SolverError("transient_session", std::move(attempts), std::move(last_cause));
}

double TransientSession::time_at(size_t i) const {
  GOP_REQUIRE(i < times_.size(), "time index out of range");
  return times_[i];
}

const std::vector<double>& TransientSession::distribution_at(size_t i) const {
  GOP_REQUIRE(i < distributions_.size(), "time index out of range");
  return distributions_[i];
}

double TransientSession::reward_at(size_t i, const std::vector<double>& state_reward) const {
  GOP_REQUIRE(state_reward.size() == chain_->state_count(), "reward vector length mismatch");
  return series_dot(distribution_at(i), state_reward);
}

std::vector<double> TransientSession::reward_series(
    const std::vector<double>& state_reward) const {
  GOP_REQUIRE(state_reward.size() == chain_->state_count(), "reward vector length mismatch");
  std::vector<double> series(times_.size());
  for (size_t i = 0; i < times_.size(); ++i) series[i] = series_dot(distributions_[i], state_reward);
  return series;
}

AccumulatedSession::AccumulatedSession(const Ctmc& chain, std::vector<double> times,
                                       const AccumulatedOptions& options)
    : chain_(&chain), times_(std::move(times)) {
  build(options);
}

void AccumulatedSession::build(const AccumulatedOptions& options) {
  const Ctmc& chain = *chain_;
  GOP_OBS_SPAN("markov.accumulated_session");
  solver_stats().accumulated_sessions.fetch_add(1, std::memory_order_relaxed);
  validate_grid(times_);
  if (times_.empty()) return;

  plan_ = plan_accumulated(chain, times_, options);
  const AccumulatedMethod method = plan_.accumulated;
  const auto zeros = [&] { return std::vector<double>(chain.state_count(), 0.0); };

  if (method == AccumulatedMethod::kUniformization && times_.back() > 0.0) {
    const double lambda = uniformization_rate(chain, options.uniformization);
    const size_t target = max_window_right(times_, lambda, options.uniformization);
    if ((target + 1) * chain.state_count() <= options.uniformization.max_session_doubles) {
      if (obs::enabled()) {
        record_session_event(obs::SolverEventKind::kAccumulatedSession, plan_, times_,
                             "uniformization-shared", lambda * times_.back(), target);
      }
      const UniformizedSequence sequence =
          build_sequence(chain, options.uniformization, target);
      solve_grid(times_, occupancies_, zeros, [&](double t) {
        return replay_accumulated(chain, sequence, t, options.uniformization);
      });
      return;
    }
    if (obs::enabled()) {
      record_session_event(obs::SolverEventKind::kAccumulatedSession, plan_, times_,
                           "uniformization-fallback", lambda * times_.back(), target);
    }
    UniformizationWorkspace workspace;
    solve_grid(times_, occupancies_, zeros, [&](double t) {
      return uniformized_accumulated_occupancy(chain, t, options.uniformization, workspace);
    });
    return;
  }

  if (method == AccumulatedMethod::kKrylov && times_.back() > 0.0) {
    if (obs::enabled()) {
      record_session_event(obs::SolverEventKind::kAccumulatedSession, plan_, times_,
                           "krylov-augmented", plan_.lambda_t, 0);
    }
    // One sparse augmented operator [[Q^T, 0], [I, 0]] serves the whole grid.
    const linalg::CsrMatrix augmented = krylov_augmented_transposed_generator(chain);
    solve_grid(times_, occupancies_, zeros, [&](double t) {
      return krylov_accumulated_occupancy(chain, augmented, t, options.krylov);
    });
    return;
  }

  if (obs::enabled()) {
    record_session_event(obs::SolverEventKind::kAccumulatedSession, plan_, times_,
                         "augmented-expm", 0.0, 0);
  }
  AccumulatedWorkspace workspace;  // augmented generator + Padé scratch shared across the grid
  solve_grid(times_, occupancies_, zeros,
             [&](double t) { return accumulated_occupancy(chain, t, options, workspace); });
}

AccumulatedSession::AccumulatedSession(const Ctmc& chain, std::vector<double> times,
                                       const AccumulatedOptions& options,
                                       const RecoveryPolicy& policy)
    : chain_(&chain), times_(std::move(times)) {
  validate_grid(times_);  // grid preconditions stay InvalidArgument, not ladder failures
  const double horizon = times_.empty() ? 0.0 : times_.back();
  const SolverPlan plan = plan_accumulated(chain, times_, options);
  const std::vector<AccumulatedMethod> ladder = detail::accumulated_ladder(plan, options, policy);

  Certificate cert;
  cert.requested_engine = plan.engine;
  std::vector<std::string> attempts;
  std::string last_cause;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const char* name = engine_name(ladder[rung]);
    AccumulatedOptions forced = options;
    forced.method = ladder[rung];
    for (size_t retry = 0; retry <= policy.max_retries; ++retry) {
      if (retry > 0) detail::tighten_for_retry(forced, policy);
      try {
        occupancies_.clear();
        build(forced);
        for (size_t i = 0; i < occupancies_.size(); ++i) {
          if (!is_occupancy_vector(occupancies_[i], times_[i], policy.validation_slack)) {
            throw NumericalError("a grid occupancy failed the occupancy-vector validation");
          }
        }
        cert.engine = name;
        cert.fallback = rung > 0;
        cert.retries = attempts.size();
        cert.degraded = cert.fallback || cert.retries > 0;
        cert.error_bound = detail::error_bound_of(forced);
        cert.attempts = attempts;
        if (cert.degraded) {
          detail::note_degraded("accumulated_session", cert, chain.state_count(), horizon);
        }
        certificate_ = std::move(cert);
        return;
      } catch (const InternalError&) {
        throw;
      } catch (const ModelError&) {
        throw;
      } catch (const std::bad_alloc&) {
        last_cause = "allocation failure";
        attempts.push_back(std::string(name) + ": allocation failure");
      } catch (const std::exception& ex) {
        last_cause = ex.what();
        attempts.push_back(std::string(name) + ": " + ex.what());
      }
    }
  }
  throw SolverError("accumulated_session", std::move(attempts), std::move(last_cause));
}

double AccumulatedSession::time_at(size_t i) const {
  GOP_REQUIRE(i < times_.size(), "time index out of range");
  return times_[i];
}

const std::vector<double>& AccumulatedSession::occupancy_at(size_t i) const {
  GOP_REQUIRE(i < occupancies_.size(), "time index out of range");
  return occupancies_[i];
}

double AccumulatedSession::reward_at(size_t i, const std::vector<double>& state_reward) const {
  GOP_REQUIRE(state_reward.size() == chain_->state_count(), "reward vector length mismatch");
  return series_dot(occupancy_at(i), state_reward);
}

std::vector<double> AccumulatedSession::reward_series(
    const std::vector<double>& state_reward) const {
  GOP_REQUIRE(state_reward.size() == chain_->state_count(), "reward vector length mismatch");
  std::vector<double> series(times_.size());
  for (size_t i = 0; i < times_.size(); ++i) series[i] = series_dot(occupancies_[i], state_reward);
  return series;
}

}  // namespace gop::markov
