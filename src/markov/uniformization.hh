#pragma once

/// \file uniformization.hh
/// Transient CTMC solution by uniformization (Jensen's method) with Fox–Glynn
/// Poisson weights and steady-state detection. Suitable when Lambda*t is
/// moderate; the transient dispatcher (transient.hh) falls back to the dense
/// matrix exponential for the stiff regimes of the paper's models.

#include <vector>

#include "markov/ctmc.hh"

namespace gop::markov {

struct UniformizationOptions {
  /// Per-call truncation error budget for the Poisson window.
  double epsilon = 1e-12;
  /// Steady-state detection threshold on ||v_{k+1} - v_k||_1; once reached
  /// the remaining Poisson mass multiplies the converged vector.
  double steady_state_tol = 1e-14;
  /// Refuse (throw gop::NumericalError) when Lambda*t exceeds this, because
  /// run time is linear in Lambda*t. Callers wanting stiff problems should
  /// use the matrix exponential instead.
  double max_lambda_t = 2e6;
  /// Uniformization rate safety factor over the maximal exit rate.
  double rate_slack = 1.02;
};

/// Reusable iterate buffers for the uniformization inner loop. One transient
/// solve performs up to O(Lambda t) DTMC steps (~1e4 for the paper's stiffer
/// regimes); without a workspace every step allocates two fresh state-sized
/// vectors. Passing a workspace makes the loop allocation-free after warm-up
/// and is what the parallel sweep layers use — one workspace per worker, since
/// a workspace must never be shared by concurrent calls.
struct UniformizationWorkspace {
  std::vector<double> iterate;  ///< v_k, the current DTMC iterate
  std::vector<double> scratch;  ///< v_{k+1} under construction
};

/// Distribution at time t starting from the chain's initial distribution.
std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options = {});

/// Workspace-reusing variant; bit-identical to the allocating one.
std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options,
                                                       UniformizationWorkspace& workspace);

/// Expected accumulated state occupancy L(t) = \int_0^t pi(s) ds, by the
/// standard uniformization integral formula.
std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options = {});

/// Workspace-reusing variant; bit-identical to the allocating one.
std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options,
                                                      UniformizationWorkspace& workspace);

}  // namespace gop::markov
