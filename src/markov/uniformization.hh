#pragma once

/// \file uniformization.hh
/// Transient CTMC solution by uniformization (Jensen's method) with Fox–Glynn
/// Poisson weights and steady-state detection. Suitable when Lambda*t is
/// moderate; the transient dispatcher (transient.hh) falls back to the dense
/// matrix exponential for the stiff regimes of the paper's models.

#include <vector>

#include "markov/ctmc.hh"

namespace gop::markov {

struct UniformizationOptions {
  /// Per-call truncation error budget for the Poisson window.
  double epsilon = 1e-12;
  /// Steady-state detection threshold on ||v_{k+1} - v_k||_1; once reached
  /// the remaining Poisson mass multiplies the converged vector.
  double steady_state_tol = 1e-14;
  /// Refuse (throw gop::NumericalError) when Lambda*t exceeds this, because
  /// run time is linear in Lambda*t. Callers wanting stiff problems should
  /// use the matrix exponential instead.
  double max_lambda_t = 2e6;
  /// Uniformization rate safety factor over the maximal exit rate.
  double rate_slack = 1.02;
  /// Result-mass invariant slack: a transient solve must return total
  /// probability within mass_check_slack of 1, an accumulated solve total
  /// occupancy within mass_check_slack * t of t, or it throws NumericalError
  /// instead of silently renormalizing a defective window. Loose enough for
  /// the rounding drift of Lambda*t ~ 2e6 DTMC steps, tight enough that a
  /// truncated Fox-Glynn window or a NaN iterate cannot pass.
  double mass_check_slack = 1e-6;
  /// Memory budget (in doubles) for the shared DTMC iterate sequence a
  /// TransientSession / AccumulatedSession (session.hh) records. A session
  /// over a time grid stores v_k = pi0 P^k for every step up to the largest
  /// time's Poisson window; when (steps+1) * state_count would exceed this
  /// budget the session falls back to independent per-time solves — still
  /// bit-identical, just without the cross-time amortization.
  size_t max_session_doubles = size_t{1} << 24;
};

/// Reusable iterate buffers for the uniformization inner loop. One transient
/// solve performs up to O(Lambda t) DTMC steps (~1e4 for the paper's stiffer
/// regimes); without a workspace every step allocates two fresh state-sized
/// vectors. Passing a workspace makes the loop allocation-free after warm-up
/// and is what the parallel sweep layers use — one workspace per worker, since
/// a workspace must never be shared by concurrent calls.
struct UniformizationWorkspace {
  std::vector<double> iterate;  ///< v_k, the current DTMC iterate
  std::vector<double> scratch;  ///< v_{k+1} under construction
};

/// The uniformization rate Lambda the solvers use: max_exit_rate * rate_slack
/// (or a dummy 1.0 for an all-absorbing chain). Exposed so the session layer
/// shares the exact rate — and therefore the exact Poisson windows and DTMC
/// iterates — of the pointwise solvers.
double uniformization_rate(const Ctmc& chain, const UniformizationOptions& options);

/// One DTMC step of the uniformized chain, written into `next`:
/// v_next = v P with P = I + Q/Lambda, computed as v + (v R - v .* exit)/Lambda.
/// Exposed so the session layer advances the exact iterate sequence of the
/// pointwise solvers (bit-identity depends on it).
void uniformized_step(const Ctmc& chain, double lambda, const std::vector<double>& v,
                      std::vector<double>& next);

/// Distribution at time t starting from the chain's initial distribution.
std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options = {});

/// Workspace-reusing variant; bit-identical to the allocating one.
std::vector<double> uniformized_transient_distribution(const Ctmc& chain, double t,
                                                       const UniformizationOptions& options,
                                                       UniformizationWorkspace& workspace);

/// Expected accumulated state occupancy L(t) = \int_0^t pi(s) ds, by the
/// standard uniformization integral formula.
std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options = {});

/// Workspace-reusing variant; bit-identical to the allocating one.
std::vector<double> uniformized_accumulated_occupancy(const Ctmc& chain, double t,
                                                      const UniformizationOptions& options,
                                                      UniformizationWorkspace& workspace);

}  // namespace gop::markov
