#pragma once

/// \file fi.hh
/// Umbrella header for gop::fi — the deterministic fault-injection subsystem
/// (docs/robustness.md) — and the GOP_FI_POINT site macro the numerical
/// kernels compile their injection sites behind.
///
/// Usage at a site:
///
///   if (GOP_FI_POINT(fi::SiteId::kLuPivotBreakdown)) best = 0.0;
///
/// With GOP_FI compiled out (the default for performance-pinned builds) the
/// macro is the literal constant `false` and the site vanishes from codegen.
/// Compiled in, a disarmed site costs one relaxed atomic load.

#include "fi/plan.hh"  // IWYU pragma: export
#include "fi/site.hh"  // IWYU pragma: export

#if defined(GOP_FI_ENABLED) && GOP_FI_ENABLED
#define GOP_FI_POINT(site) (::gop::fi::armed() && ::gop::fi::detail::should_inject(site))
#else
#define GOP_FI_POINT(site) false
#endif
