#pragma once

/// \file plan.hh
/// Deterministic fault-injection plans. A Plan arms any subset of the sites
/// in site.hh with a trigger — fire on the Nth hit, fire every K hits, or
/// fire probabilistically from a counter-based stream seeded by (plan seed,
/// site, hit index) — so every injected failure is bit-reproducible from the
/// seed alone, independent of wall clock and (for every-K and probabilistic
/// triggers) of thread interleaving.
///
/// Cost model: with no plan installed, a compiled-in site costs one relaxed
/// atomic load (armed()); with GOP_FI compiled out (fi.hh) the sites vanish
/// entirely. Installing or clearing a plan while solves are in flight is not
/// supported — arm, solve, disarm, exactly like obs::reset().

#include <array>
#include <atomic>
#include <cstdint>

#include "fi/site.hh"

namespace gop::fi {

/// True when the library was built with the injection sites compiled in
/// (-DGOP_FI=ON). Plans can always be constructed and installed; without the
/// sites they simply never fire.
constexpr bool compiled_in() {
#if defined(GOP_FI_ENABLED) && GOP_FI_ENABLED
  return true;
#else
  return false;
#endif
}

struct Trigger {
  enum class Mode : uint8_t {
    kNever,        ///< site disarmed (the default)
    kOnNth,        ///< fire exactly once, on the n-th hit (1-based)
    kEveryK,       ///< fire on every k-th hit (k = n)
    kProbability,  ///< fire each hit with probability p, from the seeded stream
  };

  Mode mode = Mode::kNever;
  uint64_t n = 1;
  double probability = 0.0;

  static Trigger on_nth(uint64_t nth);
  static Trigger every(uint64_t k);
  static Trigger with_probability(double p);
};

/// An immutable-once-installed assignment of triggers to sites.
class Plan {
 public:
  Plan() = default;
  explicit Plan(uint64_t seed) : seed_(seed) {}

  Plan& arm(SiteId site, Trigger trigger);
  const Trigger& trigger(SiteId site) const;
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_ = 0;
  std::array<Trigger, kSiteCount> triggers_{};
};

/// Installs `plan` and resets every site's hit / injection counter. Not safe
/// while solves are in flight.
void set_plan(const Plan& plan);

/// Uninstalls the active plan (counters are left readable until the next
/// set_plan).
void clear_plan();

/// Per-site accounting since the last set_plan: how often the site was
/// reached while a plan was armed, and how often it fired. `hits` counts
/// every armed traversal regardless of the site's trigger, so a campaign can
/// distinguish "not reached on this path" from "reached but not triggered".
struct SiteStats {
  uint64_t hits = 0;
  uint64_t injections = 0;
};

SiteStats site_stats(SiteId site);

/// Sum of injections over all sites since the last set_plan.
uint64_t total_injections();

/// RAII guard: installs a plan for a scope (tests, campaign cells).
class ScopedPlan {
 public:
  explicit ScopedPlan(const Plan& plan) { set_plan(plan); }
  ~ScopedPlan() { clear_plan(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

namespace detail {
extern std::atomic<bool> g_armed;

/// Counts the hit and decides whether the active plan fires at `site` now.
/// Out of line and cold: only reached while a plan is armed.
bool should_inject(SiteId site);
}  // namespace detail

/// True while a plan is installed; one relaxed load.
inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

}  // namespace gop::fi
