#include "fi/plan.hh"

#include "obs/obs.hh"
#include "util/error.hh"

namespace gop::fi {

namespace {

struct SiteInfo {
  const char* name;
  const char* description;
};

constexpr std::array<SiteInfo, kSiteCount> kSites = {{
    {"linalg.lu.pivot_breakdown", "LU partial pivoting finds an exactly zero pivot"},
    {"linalg.lu.pivot_perturb", "an LU pivot is doubled mid-factorization (silent corruption)"},
    {"linalg.dense.multiply_nan", "a dense matrix product acquires a NaN entry"},
    {"linalg.dense.multiply_inf", "a dense matrix product acquires an Inf entry"},
    {"linalg.dense.alloc_fail", "dense matrix construction throws std::bad_alloc"},
    {"markov.fox_glynn.truncate", "the Poisson window loses its upper half"},
    {"markov.uniformization.iterate_nan", "the uniformized DTMC iterate acquires a NaN entry"},
    {"markov.expm.scaling_overflow", "the Pade scaling-and-squaring setup overflows"},
    {"markov.steady_state.stall", "the steady-state convergence measure never drops"},
    {"san.state_space.probe_exhausted", "reachability exploration exhausts its probe budget"},
    {"markov.krylov.breakdown", "the Arnoldi next-vector norm reads as a spurious breakdown"},
    {"markov.krylov.iterate_nan", "the accepted Krylov sub-step iterate acquires a NaN entry"},
}};

/// All mutable injection state. The plan itself is written only by
/// set_plan/clear_plan (under the armed flag being false during the write on
/// the caller's side of the contract); the counters are relaxed atomics.
struct State {
  Plan plan;
  std::array<std::atomic<uint64_t>, kSiteCount> hits{};
  std::array<std::atomic<uint64_t>, kSiteCount> injections{};
};

State& state() {
  static State* instance = new State();  // leaked: outlives all users
  return *instance;
}

/// splitmix64-style finalizer over (seed, site, hit): a stateless
/// counter-based stream, so probabilistic triggers are reproducible per hit
/// index even when hits arrive from several threads.
uint64_t mix(uint64_t seed, uint64_t site, uint64_t hit) {
  uint64_t x = seed ^ (site * 0x9e3779b97f4a7c15ULL) ^ (hit * 0xbf58476d1ce4e5b9ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

[[gnu::cold]] [[gnu::noinline]] void record_injection_event(SiteId site, uint64_t hit) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kFaultInjection;
  event.method = to_string(site);
  event.iterations = hit;
  obs::record_event(std::move(event));
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool should_inject(SiteId site) {
  State& s = state();
  const size_t index = static_cast<size_t>(site);
  // Count the traversal first, trigger or not: campaign reports use hits to
  // tell "site not on this code path" from "site reached but not fired".
  const uint64_t hit = s.hits[index].fetch_add(1, std::memory_order_relaxed) + 1;

  const Trigger& trigger = s.plan.trigger(site);
  bool fire = false;
  switch (trigger.mode) {
    case Trigger::Mode::kNever:
      break;
    case Trigger::Mode::kOnNth:
      fire = hit == trigger.n;
      break;
    case Trigger::Mode::kEveryK:
      fire = hit % trigger.n == 0;
      break;
    case Trigger::Mode::kProbability:
      fire = static_cast<double>(mix(s.plan.seed(), index, hit)) * 0x1.0p-64 <
             trigger.probability;
      break;
  }
  if (fire) {
    s.injections[index].fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& injected = obs::counter("fi.injections");
    injected.add();
    if (obs::enabled()) record_injection_event(site, hit);
  }
  return fire;
}

}  // namespace detail

Trigger Trigger::on_nth(uint64_t nth) {
  GOP_REQUIRE(nth >= 1, "on_nth trigger needs a 1-based hit index");
  Trigger t;
  t.mode = Mode::kOnNth;
  t.n = nth;
  return t;
}

Trigger Trigger::every(uint64_t k) {
  GOP_REQUIRE(k >= 1, "every-K trigger needs K >= 1");
  Trigger t;
  t.mode = Mode::kEveryK;
  t.n = k;
  return t;
}

Trigger Trigger::with_probability(double p) {
  GOP_REQUIRE(p >= 0.0 && p <= 1.0, "trigger probability must be in [0,1]");
  Trigger t;
  t.mode = Mode::kProbability;
  t.probability = p;
  return t;
}

Plan& Plan::arm(SiteId site, Trigger trigger) {
  triggers_[static_cast<size_t>(site)] = trigger;
  return *this;
}

const Trigger& Plan::trigger(SiteId site) const {
  return triggers_[static_cast<size_t>(site)];
}

void set_plan(const Plan& plan) {
  State& s = state();
  detail::g_armed.store(false, std::memory_order_relaxed);
  s.plan = plan;
  for (auto& h : s.hits) h.store(0, std::memory_order_relaxed);
  for (auto& i : s.injections) i.store(0, std::memory_order_relaxed);
  detail::g_armed.store(true, std::memory_order_release);
}

void clear_plan() { detail::g_armed.store(false, std::memory_order_relaxed); }

SiteStats site_stats(SiteId site) {
  State& s = state();
  const size_t index = static_cast<size_t>(site);
  return SiteStats{s.hits[index].load(std::memory_order_relaxed),
                   s.injections[index].load(std::memory_order_relaxed)};
}

uint64_t total_injections() {
  State& s = state();
  uint64_t total = 0;
  for (const auto& i : s.injections) total += i.load(std::memory_order_relaxed);
  return total;
}

const char* to_string(SiteId site) { return kSites[static_cast<size_t>(site)].name; }

const char* site_description(SiteId site) {
  return kSites[static_cast<size_t>(site)].description;
}

std::optional<SiteId> site_from_string(std::string_view name) {
  for (size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSites[i].name) return static_cast<SiteId>(i);
  }
  return std::nullopt;
}

const std::array<SiteId, kSiteCount>& all_sites() {
  static const std::array<SiteId, kSiteCount> sites = [] {
    std::array<SiteId, kSiteCount> out{};
    for (size_t i = 0; i < kSiteCount; ++i) out[i] = static_cast<SiteId>(i);
    return out;
  }();
  return sites;
}

}  // namespace gop::fi
