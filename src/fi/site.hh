#pragma once

/// \file site.hh
/// Catalog of fault-injection sites (docs/robustness.md). Every site is a
/// stable, dotted lower-case identifier naming one specific failure a solver
/// internal can exhibit — a zero LU pivot, a truncated Fox-Glynn window, a
/// stalled steady-state iteration. Sites are compiled into the numerical
/// kernels behind the GOP_FI_POINT macro (fi.hh) and addressed by a seeded
/// fi::Plan (plan.hh); the enum values are append-only so campaign reports
/// and regression baselines stay comparable across versions.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace gop::fi {

enum class SiteId : uint32_t {
  /// linalg.lu.pivot_breakdown — the partial-pivoting search finds an exactly
  /// zero pivot (singular matrix); LuFactorization throws NumericalError.
  kLuPivotBreakdown = 0,
  /// linalg.lu.pivot_perturb — a pivot is silently doubled mid-factorization,
  /// corrupting every downstream solve without raising an error.
  kLuPivotPerturb,
  /// linalg.dense.multiply_nan — a dense matrix product acquires a NaN entry
  /// (uninitialised read / FMA contraction bug model).
  kDenseMultiplyNan,
  /// linalg.dense.multiply_inf — a dense matrix product acquires an Inf entry
  /// (overflow model).
  kDenseMultiplyInf,
  /// linalg.dense.alloc_fail — constructing a dense matrix throws
  /// std::bad_alloc (allocation-failure model).
  kDenseAllocFail,
  /// markov.fox_glynn.truncate — the Poisson window loses its upper half, so
  /// the returned weights sum to well below 1.
  kFoxGlynnTruncate,
  /// markov.uniformization.iterate_nan — the DTMC iterate acquires a NaN
  /// entry mid-propagation.
  kUniformizationIterateNan,
  /// markov.expm.scaling_overflow — the Padé scaling-and-squaring setup
  /// overflows; matrix_exponential throws NumericalError.
  kExpmScalingOverflow,
  /// markov.steady_state.stall — the power / Gauss-Seidel convergence measure
  /// is pinned above tolerance, so the iteration never converges.
  kSteadyStateStall,
  /// san.state_space.probe_exhausted — reachability exploration reports its
  /// probe budget exhausted (state-space explosion model); throws ModelError.
  kStateSpaceProbeExhausted,
  /// markov.krylov.breakdown — the Arnoldi next-vector norm is forced to
  /// exactly zero, signalling a spurious invariant subspace; the truncated
  /// basis yields a wrong iterate the mass check must catch.
  kKrylovBreakdown,
  /// markov.krylov.iterate_nan — the accepted Krylov sub-step iterate
  /// acquires a NaN entry (corrupted combination model).
  kKrylovIterateNan,
};

inline constexpr size_t kSiteCount = 12;

/// The stable dotted identifier ("linalg.lu.pivot_breakdown", ...).
const char* to_string(SiteId site);

/// One-line human description for catalogs and reports.
const char* site_description(SiteId site);

/// Inverse of to_string; nullopt for unknown names.
std::optional<SiteId> site_from_string(std::string_view name);

/// Every registered site, in enum order.
const std::array<SiteId, kSiteCount>& all_sites();

}  // namespace gop::fi
