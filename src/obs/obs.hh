#pragma once

/// \file obs.hh
/// Umbrella header for gop::obs — the observability subsystem
/// (docs/observability.md): registry (counters / gauges / solver events),
/// RAII hierarchical spans, and the text / JSON / JSONL sinks.

#include "obs/registry.hh"  // IWYU pragma: export
#include "obs/sink.hh"      // IWYU pragma: export
#include "obs/span.hh"      // IWYU pragma: export
