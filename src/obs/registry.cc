#include "obs/registry.hh"

#include <time.h>

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

#include "obs/span.hh"
#include "util/error.hh"

namespace gop::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

/// Mutable span-tree node. Timing fields are relaxed atomics so closing a
/// span never takes a lock; the child list is mutated under the registry
/// mutex (child creation is rare — once per distinct (parent, name) pair).
struct LiveSpanNode {
  std::string name;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> wall_ns{0};
  std::atomic<uint64_t> cpu_ns{0};
  std::vector<std::unique_ptr<LiveSpanNode>> children;
};

namespace {

/// All registry state behind one mutex. Counters / gauges live in deques so
/// the references handed out stay valid forever.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Counter*, std::less<>> counters;
  std::map<std::string, MaxGauge*, std::less<>> gauges;
  std::deque<Counter> counter_storage;
  std::deque<MaxGauge> gauge_storage;
  std::vector<SolverEvent> events;
  uint64_t dropped_events = 0;
  size_t max_events = 65536;
  LiveSpanNode root{.name = "root"};
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

/// Copies the live tree, pruning subtrees with no completed samples. Live
/// nodes survive reset() so pointers held by open spans stay valid; pruning
/// here keeps those zero-count leftovers (and still-open spans) out of the
/// snapshot until they record again.
void snapshot_node(const LiveSpanNode& live, SpanNode& out) {
  out.name = live.name;
  out.count = live.count.load(std::memory_order_relaxed);
  out.wall_ns = live.wall_ns.load(std::memory_order_relaxed);
  out.cpu_ns = live.cpu_ns.load(std::memory_order_relaxed);
  for (const auto& child : live.children) {
    SpanNode copied;
    snapshot_node(*child, copied);
    if (copied.count > 0 || !copied.children.empty()) {
      out.children.push_back(std::move(copied));
    }
  }
}

void reset_node(LiveSpanNode& node) {
  node.count.store(0, std::memory_order_relaxed);
  node.wall_ns.store(0, std::memory_order_relaxed);
  node.cpu_ns.store(0, std::memory_order_relaxed);
  for (auto& child : node.children) reset_node(*child);
}

}  // namespace

LiveSpanNode* resolve_child(LiveSpanNode* parent, const char* name) {
  Registry& reg = registry();
  if (parent == nullptr) parent = &reg.root;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& child : parent->children) {
    if (child->name == name) return child.get();
  }
  parent->children.push_back(std::make_unique<LiveSpanNode>());
  parent->children.back()->name = name;
  return parent->children.back().get();
}

LiveSpanNode*& current_span() {
  thread_local LiveSpanNode* current = nullptr;
  return current;
}

void record_sample(LiveSpanNode* node, uint64_t wall_ns, uint64_t cpu_ns) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  node->cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
}

uint64_t wall_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace detail

void ScopedSpan::open(const char* name) {
  detail::LiveSpanNode*& current = detail::current_span();
  parent_ = current;
  node_ = detail::resolve_child(parent_, name);
  current = node_;
  wall_start_ = detail::wall_now_ns();
  cpu_start_ = detail::cpu_now_ns();
}

void ScopedSpan::close() {
  detail::record_sample(node_, detail::wall_now_ns() - wall_start_,
                        detail::cpu_now_ns() - cpu_start_);
  detail::current_span() = parent_;
}

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

Counter& counter(std::string_view name) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.counters.find(name);
  if (it != reg.counters.end()) return *it->second;
  reg.counter_storage.emplace_back();
  Counter& fresh = reg.counter_storage.back();
  reg.counters.emplace(std::string(name), &fresh);
  return fresh;
}

MaxGauge& max_gauge(std::string_view name) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.gauges.find(name);
  if (it != reg.gauges.end()) return *it->second;
  reg.gauge_storage.emplace_back();
  MaxGauge& fresh = reg.gauge_storage.back();
  reg.gauges.emplace(std::string(name), &fresh);
  return fresh;
}

const char* to_string(SolverEventKind kind) {
  switch (kind) {
    case SolverEventKind::kTransient: return "transient";
    case SolverEventKind::kAccumulated: return "accumulated";
    case SolverEventKind::kSteadyState: return "steady_state";
    case SolverEventKind::kMatrixExponential: return "matrix_exponential";
    case SolverEventKind::kUniformizationPass: return "uniformization_pass";
    case SolverEventKind::kTransientSession: return "transient_session";
    case SolverEventKind::kAccumulatedSession: return "accumulated_session";
    case SolverEventKind::kFaultInjection: return "fault_injection";
    case SolverEventKind::kRecovery: return "recovery";
    case SolverEventKind::kKrylovPass: return "krylov_pass";
    case SolverEventKind::kServeRequest: return "serve_request";
    case SolverEventKind::kStructuralCell: return "structural_cell";
  }
  throw InternalError("unknown SolverEventKind");
}

void record_event(SolverEvent event) {
  if (!enabled()) return;
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.events.size() >= reg.max_events) {
    ++reg.dropped_events;
    return;
  }
  reg.events.push_back(std::move(event));
}

Snapshot snapshot() {
  detail::Registry& reg = detail::registry();
  Snapshot out;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& [name, c] : reg.counters) out.counters[name] = c->get();
  for (const auto& [name, g] : reg.gauges) out.gauges[name] = g->get();
  out.events = reg.events;
  out.dropped_events = reg.dropped_events;
  detail::snapshot_node(reg.root, out.root);
  return out;
}

void reset() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, c] : reg.counters) c->reset();
  for (auto& [name, g] : reg.gauges) g->reset();
  reg.events.clear();
  reg.dropped_events = 0;
  detail::reset_node(reg.root);
}

void set_max_events(size_t max_events) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.max_events = max_events;
}

}  // namespace gop::obs
