#pragma once

/// \file registry.hh
/// Process-wide observability registry: named counters and max-gauges,
/// structured solver-event records, and the aggregated span tree fed by the
/// RAII timers in obs/span.hh. The registry is the single source of truth
/// every sink (obs/sink.hh), the gop_trace tool, and the assertion surface of
/// the cross-solver validation tier read from.
///
/// Cost model (docs/observability.md):
///  - Counters and gauges are relaxed atomics with stable addresses; an
///    increment never takes a lock and never synchronizes with other solver
///    calls. The four legacy solver counters behind markov::solver_stats()
///    are *always* counted — exactly the pre-obs behaviour — so existing
///    amortization tests keep working without enabling anything.
///  - Everything else (solver events, spans, the par/sim instrumentation) is
///    gated on enabled(): a single relaxed bool load on the hot path when
///    tracing is off, nothing recorded, nothing allocated.
///  - Lookup by name takes a mutex, so instrumentation sites cache the
///    returned reference (`static obs::Counter& c = obs::counter("...")`).
///    References stay valid for the process lifetime (deque storage).

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gop::obs {

/// Global trace switch for events, spans, and the non-legacy counters.
/// Reading is one relaxed atomic load; flipping it mid-solve is allowed
/// (records from concurrent solves are simply kept or dropped per site).
bool enabled();
void set_enabled(bool on);

/// Monotonically increasing relaxed counter with a stable address.
class Counter {
 public:
  void add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  /// The underlying atomic, for the markov::solver_stats() compatibility shim.
  std::atomic<uint64_t>& raw() { return value_; }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Running maximum (e.g. thread-pool queue depth high-water mark).
class MaxGauge {
 public:
  void record(uint64_t value) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }
  uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Looks up (or registers) a named counter / gauge. Thread-safe; the returned
/// reference is valid for the process lifetime. Cache it at instrumentation
/// sites — the lookup itself takes the registry mutex.
Counter& counter(std::string_view name);
MaxGauge& max_gauge(std::string_view name);

/// What a solver event describes. One record per *entry-point* call: the
/// transient / accumulated / steady-state dispatchers, each dense Padé expm,
/// each uniformization propagation pass, and each solver-session build.
enum class SolverEventKind {
  kTransient,
  kAccumulated,
  kSteadyState,
  kMatrixExponential,
  kUniformizationPass,
  kTransientSession,
  kAccumulatedSession,
  /// One per fired gop::fi injection site (method = the site id); the trace
  /// proof that a campaign failure was actually seeded, not organic.
  kFaultInjection,
  /// One per degraded recovery (markov/recovery.hh): a solve that only
  /// succeeded after retries or an engine fallback. Nothing recovers silently.
  kRecovery,
  /// One per krylov_expv action (markov/krylov.hh): the Arnoldi sub-step
  /// count and basis dimension of a sparse matrix-exponential action.
  kKrylovPass,
  /// One per gop::serve request (the request log): method = outcome
  /// ("cache-hit" / "cold-solve" / "coalesced" / "rejected" / "error"),
  /// wall_ms = end-to-end latency, detail = certificate summary.
  kServeRequest,
  /// One per instantiated cell of a core::structural_sweep: method = the
  /// template family, detail = the cell's assignment label, states / t /
  /// grid_points = the cell's chain size and phi grid.
  kStructuralCell,
};

const char* to_string(SolverEventKind kind);

/// Per-solve diagnostic record in the spirit of the transient-reward
/// literature (PAPERS.md): enough to audit after the fact which engine ran,
/// how stiff the problem was, and how hard the solver worked.
struct SolverEvent {
  SolverEventKind kind = SolverEventKind::kTransient;
  /// Engine actually run: "uniformization", "pade-expm", "augmented-expm",
  /// "krylov-expv", "krylov-augmented", "gth", "power", "gauss-seidel",
  /// "initial" (t = 0 fast path), ...
  std::string method;
  /// Generator storage form the SolverPlan chose ("dense" / "sparse");
  /// empty for events recorded below the dispatcher layer.
  std::string storage;
  size_t states = 0;        ///< chain dimension
  double t = 0.0;           ///< solve horizon (0 for steady state / raw expm)
  double lambda_t = 0.0;    ///< uniformization stiffness Lambda*t (0 if n/a)
  size_t fox_glynn_left = 0;   ///< Poisson window [left, right]
  size_t fox_glynn_right = 0;
  size_t iterations = 0;    ///< DTMC steps / power sweeps / expm squarings
  bool steady_state_detected = false;  ///< uniformization stopped early
  size_t grid_points = 0;   ///< session events: times served by this solve
  size_t retries = 0;       ///< recovery events: tightened-tolerance retries
  bool degraded = false;    ///< recovery events: result needed retries/fallback
  std::string detail;       ///< recovery events: attempt log summary
  double wall_ms = 0.0;     ///< serve events: end-to-end request latency
};

/// Records an event when enabled() (drops it otherwise). The buffer is
/// bounded; once `max_events` records are held further ones are counted in
/// dropped_events() but not stored.
void record_event(SolverEvent event);

/// Aggregated timing node of the span tree (see obs/span.hh for how nodes
/// are created). Children are keyed by span name; a name used under two
/// different parents is two nodes.
struct SpanNode {
  std::string name;
  uint64_t count = 0;
  uint64_t wall_ns = 0;
  uint64_t cpu_ns = 0;
  std::vector<SpanNode> children;
};

/// Point-in-time copy of everything the registry holds; the in-memory sink
/// tests and tools assert against.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::vector<SolverEvent> events;
  uint64_t dropped_events = 0;
  SpanNode root;  ///< name "root"; top-level spans are its children
};

Snapshot snapshot();

/// Clears events, the span tree, and every counter / gauge (including the
/// legacy solver counters — markov::solver_stats().reset() does the same for
/// just its four). Intended for tests and tool startup, not for use while
/// solves are in flight.
void reset();

/// Maximum solver events kept before dropping (default 65536). Setting a new
/// cap does not discard already-recorded events.
void set_max_events(size_t max_events);

namespace detail {
/// The global enable flag, exposed so the inline fast path in span.hh can
/// read it without a function call per check.
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

}  // namespace gop::obs
