#pragma once

/// \file span.hh
/// RAII scoped timers that build the registry's aggregated span tree.
///
/// A ScopedSpan measures monotonic wall time (steady_clock) and per-thread
/// CPU time (CLOCK_THREAD_CPUTIME_ID) between construction and destruction
/// and merges both into the span node addressed by (enclosing span, name).
/// Nesting is tracked per thread: the parent of a span is the innermost live
/// span *on the same thread*, or the root for a thread with no open span —
/// so spans opened inside thread-pool tasks aggregate under the task's own
/// top-level name rather than racing to attach to another thread's stack.
///
/// When tracing is disabled the constructor is a single relaxed atomic load;
/// nothing is timed, looked up, or recorded.

#include <cstdint>

#include "obs/registry.hh"

namespace gop::obs {

namespace detail {

/// Internal mutable tree node; snapshot() converts these into SpanNode.
struct LiveSpanNode;

/// Resolves (or creates) the child of `parent` named `name`; takes the
/// registry mutex on first use of a (parent, name) pair.
LiveSpanNode* resolve_child(LiveSpanNode* parent, const char* name);

/// The per-thread innermost live span (nullptr = attach to the root).
LiveSpanNode*& current_span();

/// Adds one completed timing sample to `node` (relaxed atomics, no lock).
void record_sample(LiveSpanNode* node, uint64_t wall_ns, uint64_t cpu_ns);

uint64_t wall_now_ns();
uint64_t cpu_now_ns();

}  // namespace detail

/// Scoped hierarchical timer. `name` must be a string literal (or otherwise
/// outlive the registry); it is the tree key, so keep names stable —
/// "markov.transient", "core.evaluate_batch", ...
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (enabled()) open(name);
  }

  ~ScopedSpan() {
    if (node_ != nullptr) close();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  // Out of line (registry.cc) and cold: a span lands in every solver hot
  // path, so the disabled case must cost exactly one relaxed load plus a
  // never-taken branch — keeping the open/close machinery out of the caller
  // keeps it out of the caller's I-cache footprint too.
  [[gnu::cold]] void open(const char* name);
  [[gnu::cold]] void close();

  detail::LiveSpanNode* node_ = nullptr;
  detail::LiveSpanNode* parent_ = nullptr;
  uint64_t wall_start_ = 0;
  uint64_t cpu_start_ = 0;
};

}  // namespace gop::obs

#define GOP_OBS_CONCAT_INNER(a, b) a##b
#define GOP_OBS_CONCAT(a, b) GOP_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span for the rest of the enclosing block.
#define GOP_OBS_SPAN(name) ::gop::obs::ScopedSpan GOP_OBS_CONCAT(gop_obs_span_, __LINE__)(name)
