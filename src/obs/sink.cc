#include "obs/sink.hh"

#include <map>

#include "util/strings.hh"

namespace gop::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

double ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void text_node(const SpanNode& node, size_t depth, std::string& out) {
  const int indent = static_cast<int>(2 * depth);
  const int name_width = std::max(1, 40 - indent);
  out += str_format("%*s%-*s  count %8llu  wall %10.3f ms  cpu %10.3f ms\n", indent, "",
                    name_width, node.name.c_str(), static_cast<unsigned long long>(node.count),
                    ms(node.wall_ns), ms(node.cpu_ns));
  for (const SpanNode& child : node.children) text_node(child, depth + 1, out);
}

std::string event_json(const SolverEvent& e) {
  std::string out = str_format(
      "{\"kind\":\"%s\",\"method\":\"%s\",\"states\":%zu,\"t\":%.17g,"
      "\"lambda_t\":%.17g,\"fox_glynn_left\":%zu,\"fox_glynn_right\":%zu,"
      "\"iterations\":%zu,\"steady_state_detected\":%s,\"grid_points\":%zu",
      to_string(e.kind), json_escape(e.method).c_str(), e.states, e.t, e.lambda_t,
      e.fox_glynn_left, e.fox_glynn_right, e.iterations,
      e.steady_state_detected ? "true" : "false", e.grid_points);
  if (!e.storage.empty()) {
    out += str_format(",\"storage\":\"%s\"", json_escape(e.storage).c_str());
  }
  if (e.degraded || e.retries > 0 || !e.detail.empty()) {
    out += str_format(",\"retries\":%zu,\"degraded\":%s,\"detail\":\"%s\"", e.retries,
                      e.degraded ? "true" : "false", json_escape(e.detail).c_str());
  }
  if (e.wall_ms > 0.0) {
    out += str_format(",\"wall_ms\":%.6g", e.wall_ms);
  }
  out += "}";
  return out;
}

void json_node(const SpanNode& node, std::string& out) {
  out += str_format("{\"name\":\"%s\",\"count\":%llu,\"wall_ns\":%llu,\"cpu_ns\":%llu",
                    json_escape(node.name).c_str(),
                    static_cast<unsigned long long>(node.count),
                    static_cast<unsigned long long>(node.wall_ns),
                    static_cast<unsigned long long>(node.cpu_ns));
  out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    json_node(node.children[i], out);
  }
  out += "]}";
}

void jsonl_nodes(const SpanNode& node, const std::string& prefix, std::string& out) {
  const std::string path = prefix.empty() ? node.name : prefix + "/" + node.name;
  out += str_format("{\"type\":\"span\",\"path\":\"%s\",\"count\":%llu,\"wall_ns\":%llu,"
                    "\"cpu_ns\":%llu}\n",
                    json_escape(path).c_str(), static_cast<unsigned long long>(node.count),
                    static_cast<unsigned long long>(node.wall_ns),
                    static_cast<unsigned long long>(node.cpu_ns));
  for (const SpanNode& child : node.children) jsonl_nodes(child, path, out);
}

}  // namespace

std::string render_text(const Snapshot& snapshot) {
  std::string out = "spans (count, wall, cpu):\n";
  if (snapshot.root.children.empty()) {
    out += "  (none recorded)\n";
  }
  for (const SpanNode& child : snapshot.root.children) text_node(child, 1, out);

  out += "\ncounters:\n";
  if (snapshot.counters.empty()) out += "  (none)\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += str_format("  %-40s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }

  if (!snapshot.gauges.empty()) {
    out += "\ngauges (max):\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out += str_format("  %-40s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
  }

  out += str_format("\nsolver events: %zu", snapshot.events.size());
  if (snapshot.dropped_events > 0) {
    out += str_format(" (+%llu dropped)", static_cast<unsigned long long>(snapshot.dropped_events));
  }
  out += "\n";
  // Digest: per (kind, method) count, total iterations, max lambda_t.
  struct Digest {
    size_t count = 0;
    size_t iterations = 0;
    double max_lambda_t = 0.0;
  };
  std::map<std::string, Digest> digest;
  for (const SolverEvent& e : snapshot.events) {
    Digest& d = digest[std::string(to_string(e.kind)) + " / " + e.method];
    ++d.count;
    d.iterations += e.iterations;
    d.max_lambda_t = std::max(d.max_lambda_t, e.lambda_t);
  }
  for (const auto& [key, d] : digest) {
    out += str_format("  %-44s x%-6zu iterations %-8zu max Lambda*t %.3g\n", key.c_str(),
                      d.count, d.iterations, d.max_lambda_t);
  }
  return out;
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += str_format("\"%s\":%llu", json_escape(name).c_str(),
                      static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += str_format("\"%s\":%llu", json_escape(name).c_str(),
                      static_cast<unsigned long long>(value));
  }
  out += str_format("},\"dropped_events\":%llu,\"events\":[",
                    static_cast<unsigned long long>(snapshot.dropped_events));
  for (size_t i = 0; i < snapshot.events.size(); ++i) {
    if (i > 0) out += ",";
    out += event_json(snapshot.events[i]);
  }
  out += "],\"spans\":";
  json_node(snapshot.root, out);
  out += "}";
  return out;
}

std::string render_event_jsonl(const SolverEvent& event) {
  return "{\"type\":\"event\",\"event\":" + event_json(event) + "}\n";
}

std::string render_jsonl(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += str_format("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                      json_escape(name).c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += str_format("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%llu}\n",
                      json_escape(name).c_str(), static_cast<unsigned long long>(value));
  }
  for (const SpanNode& child : snapshot.root.children) jsonl_nodes(child, "", out);
  for (const SolverEvent& e : snapshot.events) {
    out += render_event_jsonl(e);
  }
  return out;
}

}  // namespace gop::obs
