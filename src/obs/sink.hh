#pragma once

/// \file sink.hh
/// Structured renderers for a registry Snapshot (obs/registry.hh):
///
///  - render_text  — human-readable trace: the span tree indented with
///                   call counts and wall/CPU milliseconds, then counters,
///                   gauges, and a per-kind solver-event digest.
///  - render_json  — one JSON document with the full span tree, counters,
///                   gauges, and every solver event (what `gop_trace --json`
///                   and the CI trace artifacts emit).
///  - render_jsonl — JSON *lines*: one object per span node (with its full
///                   dotted path), per counter, per gauge, and per solver
///                   event; greppable and streamable into log pipelines.
///
/// The third sink is the Snapshot itself: tests assert against the in-memory
/// structure and never parse rendered output.

#include <string>

#include "obs/registry.hh"

namespace gop::obs {

std::string render_text(const Snapshot& snapshot);
std::string render_json(const Snapshot& snapshot);
std::string render_jsonl(const Snapshot& snapshot);

/// One JSON line (newline-terminated) for a single event, in exactly the
/// render_jsonl per-event shape. The gop::serve request log streams these as
/// requests complete instead of snapshotting the whole registry.
std::string render_event_jsonl(const SolverEvent& event);

}  // namespace gop::obs
