#include "lint/finding.hh"

#include <sstream>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::lint {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Report& Report::add(Finding finding) {
  findings_.push_back(std::move(finding));
  return *this;
}

Report& Report::add(std::string code, Severity severity, std::string model, std::string location,
                    std::string message, std::string hint) {
  return add(Finding{std::move(code), severity, std::move(model), std::move(location),
                     std::move(message), std::move(hint)});
}

Report& Report::merge(Report other) {
  findings_.insert(findings_.end(), std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
  return *this;
}

size_t Report::count(Severity severity) const {
  size_t n = 0;
  for (const Finding& f : findings_) {
    if (f.severity == severity) ++n;
  }
  return n;
}

bool Report::has_code(const std::string& code) const {
  for (const Finding& f : findings_) {
    if (f.code == code) return true;
  }
  return false;
}

std::string Report::to_text() const {
  if (findings_.empty()) return "no findings\n";
  std::ostringstream os;
  for (const Finding& f : findings_) {
    os << str_format("%-7s %s", severity_name(f.severity), f.code.c_str());
    if (!f.model.empty() || !f.location.empty()) {
      os << " [" << f.model;
      if (!f.location.empty()) os << (f.model.empty() ? "" : "/") << f.location;
      os << ']';
    }
    os << ' ' << f.message << '\n';
    if (!f.hint.empty()) os << "        hint: " << f.hint << '\n';
  }
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning) << " warning(s), "
     << count(Severity::kInfo) << " info(s)\n";
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"findings\":[";
  for (size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << json_escape(f.code) << "\",\"severity\":\"" << severity_name(f.severity)
       << "\",\"model\":\"" << json_escape(f.model) << "\",\"location\":\""
       << json_escape(f.location) << "\",\"message\":\"" << json_escape(f.message)
       << "\",\"hint\":\"" << json_escape(f.hint) << "\"}";
  }
  os << "],\"counts\":{\"error\":" << count(Severity::kError)
     << ",\"warning\":" << count(Severity::kWarning) << ",\"info\":" << count(Severity::kInfo)
     << "}}";
  return os.str();
}

void Report::throw_if_errors(const std::string& context) const {
  if (!has_errors()) return;
  throw ModelError(context + ": static analysis found " + std::to_string(count(Severity::kError)) +
                   " error(s)\n" + to_text());
}

}  // namespace gop::lint
