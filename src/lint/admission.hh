#pragma once

/// \file admission.hh
/// Admission control: the composed lint battery as a single library entry
/// point. This is the check sequence `gop_lint` has always run — layer-1
/// model checks, state-space generation plus layer-2 chain/reward checks,
/// then layer-3 solver preflight for the grids the caller intends to solve —
/// factored out of the CLI so a long-running server (gop::serve) can gate
/// every request on it without shelling out. The serve layer rejects a
/// request (never crashes) when the returned report has error-severity
/// findings, attaching the findings verbatim; see docs/serving.md.
///
/// One code is owned here rather than by a check layer:
///   ADM001 error  state-space generation itself failed (explosion guard,
///                 vanishing-marking loop, ...) even though the layer-1
///                 checks passed — the gop::ModelError is captured as a
///                 finding instead of propagating.

#include <optional>
#include <span>
#include <vector>

#include "lint/chain_lint.hh"
#include "lint/finding.hh"
#include "lint/model_lint.hh"
#include "lint/preflight.hh"
#include "san/state_space.hh"

namespace gop::lint {

/// Everything one admission run needs. Grids may be empty (that preflight is
/// skipped); `rewards` entries must outlive the call.
struct AdmissionInput {
  const san::SanModel* model = nullptr;
  std::vector<const san::RewardStructure*> rewards;
  std::span<const double> transient_times;    ///< instant-of-time grid to preflight
  std::span<const double> accumulated_times;  ///< interval-of-time grid to preflight
  bool steady_state = false;                  ///< preflight the steady-state solve
  /// Already-generated chain for this model. When set, generation is skipped
  /// (the serve layer admits a model once, caches the chain, and re-runs
  /// admission per request with the cached chain and the request's grids).
  const san::GeneratedChain* chain = nullptr;
};

struct AdmissionOptions {
  ModelLintOptions model_lint;
  PreflightOptions preflight;
  san::GenerationOptions generation;
  /// Solver options the preflights mirror (the plan the dispatcher will
  /// compute depends on them).
  markov::TransientOptions transient_options;
  markov::AccumulatedOptions accumulated_options;
  markov::SteadyStateOptions steady_state_options;
};

/// Runs the full battery over `input` and returns the composed report.
/// Never throws on model defects: layer-1 errors short-circuit the later
/// layers (generation would throw on them), and a generation failure becomes
/// an ADM001 error finding. Out-of-contract use (null model) still throws
/// gop::InvalidArgument.
Report admission_check(const AdmissionInput& input, const AdmissionOptions& options = {});

/// Convenience for callers that also want the generated chain when admission
/// passed the generation stage (the serve layer caches it). Empty when
/// layer-1 errors stopped the battery or generation failed.
struct AdmissionResult {
  Report report;
  std::optional<san::GeneratedChain> chain;
};

/// As admission_check, but hands back the chain it generated (or nothing if
/// `input.chain` was provided — the caller already holds it).
AdmissionResult admission_check_keep_chain(const AdmissionInput& input,
                                           const AdmissionOptions& options = {});

}  // namespace gop::lint
