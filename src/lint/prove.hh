#pragma once

/// \file prove.hh
/// gop::lint — symbolic model prover. Where the reachability probe
/// (model_lint.hh) *runs* a model's expressions marking-by-marking and can
/// only ever certify the prefix it visited, the prover *reads* the
/// expression IR the san/expr.hh combinators attach (san/expr_ir.hh) and
/// abstract-interprets it over interval boxes, proving properties for ALL
/// markings at once:
///
///  - every place's token count is bounded (by its declared capacity or an
///    inferred interval; places the box domain cannot bound raise SAN040);
///  - enabled timed activities have positive, finite rates (SAN012 becomes a
///    universal statement instead of a probed one);
///  - case probabilities lie in [0,1] and sum to 1 in every enabling marking
///    (SAN011/SAN010 universal, via case-splitting on the distinct cond_prob
///    conditions of the activity);
///  - effects never drive a marking negative (SAN041) or past a declared
///    capacity (SAN042);
///  - activity liveness (SAN020/SAN021) and constant places (SAN022) as
///    proofs over the bound box rather than probe observations.
///
/// Every property gets one of three verdicts. kProved means the property
/// holds for every marking inside the computed bounds (a superset of the
/// reachable set, so the proof covers every reachable marking). kRefuted
/// means a concrete witness marking inside the bounds violates it — the
/// finding carries the witness. kUnprovable means the IR is opaque (a
/// hand-written lambda, SAN043) or the interval domain is too coarse
/// (SAN044); lint_model() falls back to the probe for exactly these.
///
/// Check codes added by this pass (catalog: docs/static-analysis.md):
///   SAN040 warning place cannot be bounded in the box domain
///   SAN041 error   effect can drive a place marking negative (witnessed)
///   SAN042 error   declared place capacity can be exceeded (witnessed)
///   SAN043 info    expression is opaque to the prover (hand-written lambda)
///   SAN044 warning property unprovable: interval domain too coarse
///   SAN045 info    model fully proved (every property kProved)

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "lint/finding.hh"
#include "san/model.hh"

namespace gop::lint {

/// Outcome of one property check.
enum class Verdict {
  kProved,      ///< holds for every marking within the computed bounds
  kRefuted,     ///< a concrete witness marking violates it
  kUnprovable,  ///< opaque expression or interval domain too coarse
};

/// "proved" | "refuted" | "unprovable".
const char* verdict_name(Verdict verdict);

/// Inclusive token-count interval of one place. Markings are non-negative by
/// construction, so lo >= 0; hi == kUnbounded means no upper bound.
struct TokenInterval {
  static constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max();

  int64_t lo = 0;
  int64_t hi = kUnbounded;

  bool bounded() const { return hi != kUnbounded; }
  bool is_point() const { return lo == hi; }
  bool contains(int64_t tokens) const { return tokens >= lo && tokens <= hi; }
};

/// A box of token intervals, one per place: the abstract state. The fixpoint
/// box over-approximates the reachable marking set, so a property proved for
/// every marking in the box holds for every reachable marking.
struct MarkingBox {
  std::vector<TokenInterval> places;

  bool contains(const san::Marking& marking) const;
  std::string to_string(const san::SanModel& model) const;
};

/// One property the prover checked, with its verdict. `property` is a stable
/// key ("rate-positive", "prob-range", "prob-sum", "effect-bounds",
/// "liveness", "place-bounded"); `location` names the activity/case/place.
struct PropertyVerdict {
  std::string property;
  std::string location;
  Verdict verdict = Verdict::kUnprovable;
  std::string detail;  ///< proved bound, witness marking, or why unprovable
};

struct ProveOptions {
  /// Tolerances match ModelLintOptions / san::GenerationOptions so the
  /// prover never contradicts the probe on the same model.
  double probability_tolerance = 1e-9;

  /// Fixpoint iterations before widening kicks in. Widening jumps a growing
  /// upper bound to the place's declared capacity, then to unbounded; a
  /// shrinking lower bound drops to 0.
  size_t widen_delay = 4;

  /// Probability-sum proofs case-split on the distinct cond_prob conditions
  /// of an activity; more than this many distinct conditions (2^n branch
  /// assignments) makes the sum unprovable instead of exploding.
  size_t max_predicate_splits = 6;

  /// Witness searches (refutations, liveness) enumerate at most this many
  /// candidate markings from the box corners before giving up.
  size_t max_witness_candidates = 256;
};

struct ProofResult {
  /// Fixpoint bounds on every place (over-approximation of reachability).
  MarkingBox bounds;

  /// Every property checked, in a deterministic order.
  std::vector<PropertyVerdict> verdicts;

  /// Findings derived from the verdicts (refutations, unprovables, proofs
  /// worth surfacing like proved-dead activities and constant places).
  Report findings;

  /// True when every property is kProved: the model needs no probe at all.
  bool fully_proved = false;

  size_t count(Verdict verdict) const;
};

/// Proves what it can about `model` from the expression IR alone; never
/// evaluates an expression on a marking the box does not contain and never
/// runs the reachability probe.
ProofResult prove_model(const san::SanModel& model, const ProveOptions& options = {});

}  // namespace gop::lint
