#include "lint/prove.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "util/strings.hh"

namespace gop::lint {

namespace {

using san::ExprIr;
using san::ExprOp;
using san::InstantaneousActivity;
using san::Marking;
using san::SanModel;
using san::TimedActivity;

constexpr int64_t kUnb = TokenInterval::kUnbounded;
constexpr double kInf = std::numeric_limits<double>::infinity();

TokenInterval join(const TokenInterval& a, const TokenInterval& b) {
  TokenInterval out;
  out.lo = std::min(a.lo, b.lo);
  out.hi = (a.hi == kUnb || b.hi == kUnb) ? kUnb : std::max(a.hi, b.hi);
  return out;
}

MarkingBox join(const MarkingBox& a, const MarkingBox& b) {
  MarkingBox out = a;
  for (size_t p = 0; p < out.places.size(); ++p) out.places[p] = join(a.places[p], b.places[p]);
  return out;
}

bool operator==(const TokenInterval& a, const TokenInterval& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

bool boxes_equal(const MarkingBox& a, const MarkingBox& b) {
  return std::equal(a.places.begin(), a.places.end(), b.places.begin(), b.places.end(),
                    [](const TokenInterval& x, const TokenInterval& y) { return x == y; });
}

/// Refines `box` to the sub-box where `pred` evaluates to `target`; nullopt
/// when no marking in the box can. Over-approximate: kOpaque (and any node
/// the interval domain cannot split, like `!= v` strictly inside an
/// interval) leaves the box unchanged, which is sound for everything the
/// prover concludes from a refinement.
std::optional<MarkingBox> refine(const MarkingBox& box, const ExprIr& pred, bool target) {
  if (!pred) return box;
  switch (pred->op) {
    case ExprOp::kAlways:
      return target ? std::optional<MarkingBox>(box) : std::nullopt;
    case ExprOp::kMarkEq: {
      const TokenInterval iv = box.places[pred->place];
      const int64_t v = pred->value;
      if (target) {
        if (!iv.contains(v)) return std::nullopt;
        MarkingBox out = box;
        out.places[pred->place] = TokenInterval{v, v};
        return out;
      }
      if (!iv.contains(v)) return box;
      if (iv.is_point()) return std::nullopt;
      MarkingBox out = box;
      if (v == iv.lo) {
        out.places[pred->place].lo = v + 1;
      } else if (iv.bounded() && v == iv.hi) {
        out.places[pred->place].hi = v - 1;
      }
      return out;
    }
    case ExprOp::kMarkGe: {
      const TokenInterval iv = box.places[pred->place];
      const int64_t v = pred->value;
      MarkingBox out = box;
      if (target) {
        const int64_t lo = std::max(iv.lo, v);
        if (iv.bounded() && lo > iv.hi) return std::nullopt;
        out.places[pred->place].lo = lo;
        return out;
      }
      if (iv.lo > v - 1) return std::nullopt;
      out.places[pred->place].hi = iv.bounded() ? std::min(iv.hi, v - 1) : v - 1;
      return out;
    }
    case ExprOp::kAllOf:
    case ExprOp::kAnyOf: {
      // De Morgan: a failing conjunction behaves like a disjunction of
      // failing children and vice versa.
      const bool conjunctive = (pred->op == ExprOp::kAllOf) == target;
      if (conjunctive) {
        std::optional<MarkingBox> out = box;
        for (const ExprIr& child : pred->children) {
          out = refine(*out, child, target);
          if (!out) return std::nullopt;
        }
        return out;
      }
      std::optional<MarkingBox> out;
      for (const ExprIr& child : pred->children) {
        std::optional<MarkingBox> branch = refine(box, child, target);
        if (!branch) continue;
        out = out ? join(*out, *branch) : *branch;
      }
      return out;
    }
    case ExprOp::kNot:
      return refine(box, pred->children.at(0), !target);
    default:
      return box;
  }
}

/// Range of a numeric expression over a box. known == false means the tree
/// is opaque (or not a numeric expression) and nothing can be said.
struct NumRange {
  double lo = -kInf;
  double hi = kInf;
  bool known = false;
};

NumRange eval_num(const MarkingBox& box, const ExprIr& e) {
  if (!e) return {};
  switch (e->op) {
    case ExprOp::kConstNum:
      return {e->number, e->number, true};
    case ExprOp::kComplement: {
      const NumRange r = eval_num(box, e->children.at(0));
      if (!r.known) return {};
      return {1.0 - r.hi, 1.0 - r.lo, true};
    }
    case ExprOp::kRatePerToken: {
      const TokenInterval iv = box.places[e->place];
      const double r = e->number;
      const double a = r * static_cast<double>(iv.lo);
      const double b = iv.bounded() ? r * static_cast<double>(iv.hi)
                                    : (r > 0 ? kInf : (r < 0 ? -kInf : 0.0));
      return {std::min(a, b), std::max(a, b), true};
    }
    case ExprOp::kCond: {
      const std::optional<MarkingBox> tb = refine(box, e->children.at(0), true);
      const std::optional<MarkingBox> fb = refine(box, e->children.at(0), false);
      NumRange out{kInf, -kInf, true};
      bool any = false;
      for (const auto& [branch_box, branch] :
           {std::pair(tb, e->children.at(1)), std::pair(fb, e->children.at(2))}) {
        if (!branch_box) continue;
        const NumRange r = eval_num(*branch_box, branch);
        if (!r.known) return {};
        out.lo = std::min(out.lo, r.lo);
        out.hi = std::max(out.hi, r.hi);
        any = true;
      }
      return any ? out : NumRange{};
    }
    default:
      return {};
  }
}

/// Side conditions the post-box cannot express: an opaque sub-effect (the
/// post-box degrades to `top`) and add_mark steps whose lower corner would
/// go negative (the closure GOP_ENSUREs and throws there at run time).
struct EffectFlags {
  bool opaque = false;
  std::set<size_t> may_negative;
};

MarkingBox apply_effect(const MarkingBox& box, const ExprIr& e, const MarkingBox& top,
                        EffectFlags& flags) {
  if (!e) {
    flags.opaque = true;
    return top;
  }
  switch (e->op) {
    case ExprOp::kNoEffect:
      return box;
    case ExprOp::kSetMark: {
      MarkingBox out = box;
      out.places[e->place] = TokenInterval{e->value, e->value};
      return out;
    }
    case ExprOp::kAddMark: {
      MarkingBox out = box;
      TokenInterval& iv = out.places[e->place];
      int64_t lo = iv.lo + e->value;
      int64_t hi = iv.bounded() ? iv.hi + e->value : kUnb;
      if (lo < 0) {
        flags.may_negative.insert(e->place);
        lo = 0;
      }
      if (hi != kUnb && hi < 0) hi = 0;
      iv = TokenInterval{lo, hi};
      return out;
    }
    case ExprOp::kSequence: {
      MarkingBox out = box;
      for (const ExprIr& child : e->children) out = apply_effect(out, child, top, flags);
      return out;
    }
    case ExprOp::kWhen: {
      const std::optional<MarkingBox> tb = refine(box, e->children.at(0), true);
      const std::optional<MarkingBox> fb = refine(box, e->children.at(0), false);
      std::optional<MarkingBox> out;
      if (tb) out = apply_effect(*tb, e->children.at(1), top, flags);
      if (fb) out = out ? join(*out, *fb) : *fb;
      return out ? *out : box;
    }
    default:
      flags.opaque = true;
      return top;
  }
}

/// True when every place index the tree references exists in the model.
bool places_in_range(const ExprIr& e, size_t place_count, size_t& offending) {
  if (!e) return true;
  switch (e->op) {
    case ExprOp::kMarkEq:
    case ExprOp::kMarkGe:
    case ExprOp::kRatePerToken:
    case ExprOp::kSetMark:
    case ExprOp::kAddMark:
      if (e->place >= place_count) {
        offending = e->place;
        return false;
      }
      break;
    default:
      break;
  }
  for (const ExprIr& child : e->children) {
    if (!places_in_range(child, place_count, offending)) return false;
  }
  return true;
}

/// Per-place interesting token values and the set of referenced places, for
/// witness enumeration: interval corners plus the constants the expressions
/// compare against (and their neighbours, to cross predicate boundaries).
void collect_constants(const ExprIr& e, std::map<size_t, std::set<int64_t>>& out) {
  if (!e) return;
  switch (e->op) {
    case ExprOp::kMarkEq:
    case ExprOp::kMarkGe: {
      std::set<int64_t>& vals = out[e->place];
      vals.insert(e->value - 1);
      vals.insert(e->value);
      vals.insert(e->value + 1);
      break;
    }
    case ExprOp::kRatePerToken:
    case ExprOp::kSetMark:
    case ExprOp::kAddMark:
      out[e->place];
      break;
    default:
      break;
  }
  for (const ExprIr& child : e->children) collect_constants(child, out);
}

/// Concrete-evaluation helpers: witness checks run the actual closures, so
/// any exception (bad place reference, negative-marking GOP_ENSURE) simply
/// disqualifies the candidate or confirms the refutation.
std::optional<bool> try_pred(const san::Predicate& fn, const Marking& m) {
  try {
    return fn(m);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> try_num(const san::RateFn& fn, const Marking& m) {
  try {
    return fn(m);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Runs the effect on a copy; nullopt when it threw, else the post marking.
std::optional<Marking> try_effect(const san::Effect& fn, const Marking& m) {
  Marking next = m;
  try {
    fn(next);
    return next;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// The prover proper: fixpoint bounds, then one verdict per property.
class Prover {
 public:
  Prover(const SanModel& model, const ProveOptions& options, ProofResult& result)
      : model_(model), options_(options), result_(result) {}

  void run();

 private:
  // --- verdict/finding plumbing --------------------------------------------

  void verdict(const char* property, std::string location, Verdict v, std::string detail) {
    result_.verdicts.push_back(PropertyVerdict{property, std::move(location), v,
                                               std::move(detail)});
  }

  void finding(const char* code, Severity severity, std::string location, std::string message,
               std::string hint) {
    result_.findings.add(code, severity, model_.name(), std::move(location), std::move(message),
                         std::move(hint));
  }

  /// SAN043 for one opaque expression, named by its role within the activity.
  void opaque_finding(const std::string& location, const char* role) {
    finding("SAN043", Severity::kInfo, location,
            str_format("%s is opaque to the prover (hand-written lambda): the property falls "
                       "back to the reachability probe",
                       role),
            "build the expression from the san/expr.hh combinators to make it provable");
  }

  /// Statically-invalid place reference: SAN004 without running anything.
  /// Returns true when the expression is usable (all places in range).
  bool check_places(const ExprIr& e, const std::string& location) {
    size_t offending = 0;
    if (places_in_range(e, model_.place_count(), offending)) return true;
    if (reported_bad_places_.insert(location).second) {
      finding("SAN004", Severity::kError, location,
              str_format("expression references place #%zu but the model declares %zu place(s)",
                         offending, model_.place_count()),
              "expressions must reference only places the model declares");
    }
    return false;
  }

  // --- fixpoint -------------------------------------------------------------

  MarkingBox initial_box() const {
    MarkingBox box;
    const Marking initial = model_.initial_marking();
    box.places.resize(model_.place_count());
    for (size_t p = 0; p < model_.place_count(); ++p) {
      box.places[p] = TokenInterval{initial[p], initial[p]};
    }
    return box;
  }

  MarkingBox top_box() const {
    MarkingBox box;
    box.places.resize(model_.place_count());
    for (size_t p = 0; p < model_.place_count(); ++p) {
      const std::optional<int32_t> cap = model_.place_capacity(san::PlaceRef{p});
      box.places[p] = TokenInterval{0, cap ? static_cast<int64_t>(*cap) : kUnb};
    }
    return box;
  }

  /// The usable IR of an expression: its tree, unless a place reference is
  /// statically out of range, in which case null (treated as opaque but
  /// without an extra SAN043 — the SAN004 already names the defect).
  template <typename Fn>
  ExprIr usable_ir(const Fn& fn, const std::string& location) {
    const ExprIr& e = fn.ir();
    if (!e) return nullptr;
    return check_places(e, location) ? e : nullptr;
  }

  /// One abstract firing sweep: joins every activity's post-box into `next`.
  void sweep(const MarkingBox& box, MarkingBox& next) {
    const auto fire = [&](const san::Predicate& enabled, const std::vector<san::Case>& cases,
                          const std::string& name) {
      const std::optional<MarkingBox> guard = refine(box, usable_ir(enabled, name), true);
      if (!guard) return;
      for (size_t c = 0; c < cases.size(); ++c) {
        const std::string location = name + " case " + std::to_string(c);
        const NumRange p = eval_num(*guard, usable_ir(cases[c].probability, location));
        if (p.known && p.lo == 0.0 && p.hi == 0.0) continue;  // case provably never taken
        EffectFlags flags;
        next = join(next, apply_effect(*guard, usable_ir(cases[c].effect, location), top_, flags));
      }
    };
    for (const TimedActivity& activity : model_.timed_activities()) {
      fire(activity.enabled, activity.cases, activity.name);
    }
    // Priority pre-emption is ignored here: firing a pre-empted activity
    // abstractly only widens the box, which stays a sound over-approximation.
    for (const InstantaneousActivity& activity : model_.instantaneous_activities()) {
      fire(activity.enabled, activity.cases, activity.name);
    }
  }

  /// Widening: a bound still moving after widen_delay sweeps jumps straight
  /// to its threshold — the declared capacity if it still fits, else
  /// unbounded (upper) / zero (lower). Guarantees termination.
  void widen(const MarkingBox& previous, MarkingBox& next) const {
    for (size_t p = 0; p < next.places.size(); ++p) {
      const TokenInterval& before = previous.places[p];
      TokenInterval& after = next.places[p];
      if (after.lo < before.lo) after.lo = 0;
      if (after.hi != before.hi && (before.hi == kUnb || after.hi == kUnb ||
                                    after.hi > before.hi)) {
        const TokenInterval& cap = top_.places[p];
        after.hi = (cap.bounded() && after.hi != kUnb && after.hi <= cap.hi) ? cap.hi : kUnb;
      }
    }
  }

  void fixpoint() {
    box_ = initial_box();
    for (size_t iteration = 0;; ++iteration) {
      MarkingBox next = box_;
      sweep(box_, next);
      if (iteration >= options_.widen_delay) widen(box_, next);
      if (boxes_equal(next, box_)) break;
      box_ = std::move(next);
    }
  }

  // --- witness search -------------------------------------------------------

  /// Enumerates candidate markings of `box`: the cartesian product of each
  /// place's corner values and the constants `exprs` compare against, capped
  /// at max_witness_candidates (falling back to varying only the referenced
  /// places when the full product is too large).
  std::vector<Marking> candidates(const MarkingBox& box, const std::vector<ExprIr>& exprs) const {
    std::map<size_t, std::set<int64_t>> constants;
    for (const ExprIr& e : exprs) collect_constants(e, constants);

    const auto place_values = [&](size_t p, bool vary) {
      std::vector<int64_t> values;
      const TokenInterval& iv = box.places[p];
      values.push_back(iv.lo);
      if (!vary) return values;
      if (iv.bounded() && iv.hi != iv.lo) values.push_back(iv.hi);
      if (const auto it = constants.find(p); it != constants.end()) {
        for (int64_t v : it->second) {
          if (v >= iv.lo && (!iv.bounded() || v <= iv.hi) &&
              std::find(values.begin(), values.end(), v) == values.end()) {
            values.push_back(v);
          }
        }
      }
      std::sort(values.begin(), values.end());
      return values;
    };

    for (const bool vary_all : {true, false}) {
      std::vector<std::vector<int64_t>> axes(model_.place_count());
      size_t product = 1;
      for (size_t p = 0; p < model_.place_count(); ++p) {
        axes[p] = place_values(p, vary_all || constants.count(p) > 0);
        product = std::min(product * axes[p].size(), options_.max_witness_candidates + 1);
      }
      if (product > options_.max_witness_candidates && vary_all) continue;

      std::vector<Marking> out;
      std::vector<size_t> digit(model_.place_count(), 0);
      while (out.size() < options_.max_witness_candidates) {
        Marking m(model_.place_count());
        bool representable = true;
        for (size_t p = 0; p < model_.place_count(); ++p) {
          const int64_t v = axes[p][digit[p]];
          if (v > std::numeric_limits<int32_t>::max()) representable = false;
          m[p] = static_cast<int32_t>(v);
        }
        if (representable) out.push_back(std::move(m));
        size_t p = 0;
        for (; p < digit.size(); ++p) {
          if (++digit[p] < axes[p].size()) break;
          digit[p] = 0;
        }
        if (p == digit.size()) return out;
      }
      return out;
    }
    return {};
  }

  /// True when `m` is tangible under the concrete instantaneous guards; a
  /// throwing guard disqualifies the candidate (nullopt upstream).
  std::optional<bool> tangible(const Marking& m) const {
    for (const InstantaneousActivity& activity : model_.instantaneous_activities()) {
      const std::optional<bool> enabled = try_pred(activity.enabled, m);
      if (!enabled) return std::nullopt;
      if (*enabled) return false;
    }
    return true;
  }

  /// True when no strictly-higher-priority instantaneous activity is enabled
  /// at `m` (the firing rule for instantaneous activity `self`).
  std::optional<bool> unpreempted(const Marking& m, size_t self) const {
    const int priority = model_.instantaneous_activities()[self].priority;
    for (size_t i = 0; i < model_.instantaneous_activities().size(); ++i) {
      const InstantaneousActivity& other = model_.instantaneous_activities()[i];
      if (i == self || other.priority <= priority) continue;
      const std::optional<bool> enabled = try_pred(other.enabled, m);
      if (!enabled) return std::nullopt;
      if (*enabled) return false;
    }
    return true;
  }

  // --- per-activity properties ---------------------------------------------

  void prove_liveness(const std::string& name, const san::Predicate& enabled,
                      const std::optional<MarkingBox>& guard, bool timed,
                      std::optional<size_t> instant_index);
  void prove_rate(const TimedActivity& activity, const MarkingBox& guard);
  void prove_case_ranges(const std::string& name, const std::vector<san::Case>& cases,
                         const san::Predicate& enabled, const MarkingBox& guard);
  void prove_case_sum(const std::string& name, const std::vector<san::Case>& cases,
                      const san::Predicate& enabled, const MarkingBox& guard);
  void prove_effects(const std::string& name, const std::vector<san::Case>& cases,
                     const san::Predicate& enabled, const MarkingBox& guard);
  void prove_places();

  const SanModel& model_;
  const ProveOptions& options_;
  ProofResult& result_;

  MarkingBox box_;  ///< fixpoint bounds
  MarkingBox top_;  ///< [0, declared capacity | unbounded] per place
  std::set<std::string> reported_bad_places_;
};

void Prover::prove_liveness(const std::string& name, const san::Predicate& enabled,
                            const std::optional<MarkingBox>& guard, bool timed,
                            std::optional<size_t> instant_index) {
  const char* code = timed ? "SAN020" : "SAN021";
  if (enabled.has_ir() && !guard) {
    verdict("liveness", name, Verdict::kProved, "guard unsatisfiable within bounds: proved dead");
    finding(code, Severity::kWarning, name,
            timed ? "timed activity can fire in no marking (proved: the guard is unsatisfiable "
                    "within the marking bounds)"
                  : "instantaneous activity can fire in no marking (proved: the guard is "
                    "unsatisfiable within the marking bounds)",
            "the enabling predicate never holds; check the guard and the initial marking");
    return;
  }
  const MarkingBox& search = guard ? *guard : box_;
  for (const Marking& m : candidates(search, {enabled.ir()})) {
    const std::optional<bool> on = try_pred(enabled, m);
    if (!on || !*on) continue;
    const std::optional<bool> fires =
        timed ? tangible(m) : unpreempted(m, *instant_index);
    if (fires && *fires) {
      verdict("liveness", name, Verdict::kProved, "fires in marking " + m.to_string());
      return;
    }
  }
  verdict("liveness", name, Verdict::kUnprovable,
          "no firing witness found among the box corners");
  finding("SAN044", Severity::kWarning, name,
          "cannot decide whether the activity ever fires (interval domain too coarse); the "
          "reachability probe decides this",
          "tighten the guard to combinator predicates, or rely on the probe");
}

void Prover::prove_rate(const TimedActivity& activity, const MarkingBox& guard) {
  const ExprIr rate = usable_ir(activity.rate, activity.name);
  if (!activity.rate.has_ir()) opaque_finding(activity.name, "rate expression");
  if (!rate) {
    verdict("rate-positive", activity.name, Verdict::kUnprovable, "opaque rate expression");
    return;
  }
  const NumRange range = eval_num(guard, rate);
  if (range.known && range.lo > 0.0 && std::isfinite(range.hi)) {
    verdict("rate-positive", activity.name, Verdict::kProved,
            str_format("rate in [%g, %g] over all enabling markings", range.lo, range.hi));
    return;
  }
  // The range dips to zero or below (or is unbounded): look for a concrete
  // enabling marking where the closure really misbehaves.
  for (const Marking& m : candidates(guard, {activity.enabled.ir(), rate})) {
    const std::optional<bool> on = try_pred(activity.enabled, m);
    if (!on || !*on) continue;
    const std::optional<double> r = try_num(activity.rate, m);
    if (r && (!(*r > 0.0) || !std::isfinite(*r))) {
      verdict("rate-positive", activity.name, Verdict::kRefuted,
              str_format("rate %g in enabling marking %s", *r, m.to_string().c_str()));
      finding("SAN012", Severity::kError, activity.name,
              str_format("rate evaluates to %g in enabling marking %s (must be positive and "
                         "finite); refuted by the prover",
                         *r, m.to_string().c_str()),
              "guard the rate expression so it is positive and finite wherever the activity is "
              "enabled");
      return;
    }
  }
  verdict("rate-positive", activity.name, Verdict::kUnprovable,
          str_format("rate range [%g, %g] over the enabling box is not provably positive and "
                     "finite",
                     range.lo, range.hi));
  finding("SAN044", Severity::kWarning, activity.name,
          str_format("cannot prove the rate positive and finite (range [%g, %g] over the "
                     "enabling box)",
                     range.lo, range.hi),
          "bound the places the rate depends on, or rely on the probe");
}

void Prover::prove_case_ranges(const std::string& name, const std::vector<san::Case>& cases,
                               const san::Predicate& enabled, const MarkingBox& guard) {
  for (size_t c = 0; c < cases.size(); ++c) {
    const std::string location = name + " case " + std::to_string(c);
    const ExprIr prob = usable_ir(cases[c].probability, location);
    if (!cases[c].probability.has_ir()) opaque_finding(location, "case probability");
    if (!prob) {
      verdict("prob-range", location, Verdict::kUnprovable, "opaque probability expression");
      continue;
    }
    const NumRange range = eval_num(guard, prob);
    const double tol = options_.probability_tolerance;
    if (range.known && range.lo >= -tol && range.hi <= 1.0 + tol) {
      verdict("prob-range", location, Verdict::kProved,
              str_format("probability in [%g, %g]", range.lo, range.hi));
      continue;
    }
    bool refuted = false;
    for (const Marking& m : candidates(guard, {enabled.ir(), prob})) {
      const std::optional<bool> on = try_pred(enabled, m);
      if (!on || !*on) continue;
      const std::optional<double> p = try_num(cases[c].probability, m);
      if (p && !(*p >= -tol && *p <= 1.0 + tol)) {
        verdict("prob-range", location, Verdict::kRefuted,
                str_format("probability %g in marking %s", *p, m.to_string().c_str()));
        finding("SAN011", Severity::kError, name,
                str_format("case %zu has probability %g in marking %s (outside [0,1]); refuted "
                           "by the prover",
                           c, *p, m.to_string().c_str()),
                "case probabilities are probabilities; clamp or renormalize the expression");
        refuted = true;
        break;
      }
    }
    if (refuted) continue;
    verdict("prob-range", location, Verdict::kUnprovable,
            str_format("probability range [%g, %g] not provably within [0,1]", range.lo,
                       range.hi));
    finding("SAN044", Severity::kWarning, location,
            str_format("cannot prove the case probability within [0,1] (range [%g, %g])",
                       range.lo, range.hi),
            "bound the places the probability depends on, or rely on the probe");
  }
}

void Prover::prove_case_sum(const std::string& name, const std::vector<san::Case>& cases,
                            const san::Predicate& enabled, const MarkingBox& guard) {
  // Collect the distinct branch conditions across the cases (cond_prob
  // nodes); the sum is proved per feasible true/false assignment of them.
  std::vector<ExprIr> conditions;
  std::vector<ExprIr> probs;
  for (size_t c = 0; c < cases.size(); ++c) {
    const ExprIr prob = usable_ir(cases[c].probability, name + " case " + std::to_string(c));
    if (!prob || san::ir::contains_opaque(prob)) {
      verdict("prob-sum", name, Verdict::kUnprovable,
              "a case probability is opaque to the prover");
      return;
    }
    probs.push_back(prob);
    const std::function<void(const ExprIr&)> scan = [&](const ExprIr& e) {
      if (e->op == ExprOp::kCond) {
        const ExprIr& cond = e->children[0];
        if (std::none_of(conditions.begin(), conditions.end(), [&](const ExprIr& seen) {
              return san::ir::structurally_equal(seen, cond);
            })) {
          conditions.push_back(cond);
        }
      }
      for (const ExprIr& child : e->children) scan(child);
    };
    scan(prob);
  }
  if (conditions.size() > options_.max_predicate_splits) {
    verdict("prob-sum", name, Verdict::kUnprovable,
            str_format("%zu distinct branch conditions exceed max_predicate_splits=%zu",
                       conditions.size(), options_.max_predicate_splits));
    finding("SAN044", Severity::kWarning, name,
            str_format("cannot prove the case probabilities sum to 1: %zu distinct branch "
                       "conditions exceed the case-split budget of %zu",
                       conditions.size(), options_.max_predicate_splits),
            "simplify the branch structure or raise ProveOptions::max_predicate_splits");
    return;
  }

  // Resolves a probability tree to the constant it takes under `assignment`.
  const std::function<std::optional<double>(const ExprIr&, const std::vector<bool>&,
                                            const MarkingBox&)>
      resolve = [&](const ExprIr& e, const std::vector<bool>& assignment,
                    const MarkingBox& branch_box) -> std::optional<double> {
    switch (e->op) {
      case ExprOp::kConstNum:
        return e->number;
      case ExprOp::kComplement: {
        const std::optional<double> child = resolve(e->children[0], assignment, branch_box);
        return child ? std::optional<double>(1.0 - *child) : std::nullopt;
      }
      case ExprOp::kCond:
        for (size_t i = 0; i < conditions.size(); ++i) {
          if (san::ir::structurally_equal(conditions[i], e->children[0])) {
            return resolve(e->children[assignment[i] ? 1 : 2], assignment, branch_box);
          }
        }
        return std::nullopt;
      default: {
        const NumRange r = eval_num(branch_box, e);
        if (r.known && r.lo == r.hi) return r.lo;
        return std::nullopt;
      }
    }
  };

  for (uint64_t mask = 0; mask < (uint64_t{1} << conditions.size()); ++mask) {
    std::vector<bool> assignment(conditions.size());
    std::optional<MarkingBox> branch_box = guard;
    for (size_t i = 0; i < conditions.size() && branch_box; ++i) {
      assignment[i] = (mask >> i) & 1;
      branch_box = refine(*branch_box, conditions[i], assignment[i]);
    }
    if (!branch_box) continue;  // this combination of branches is infeasible

    // Sum the per-case constants exactly as the generator does: in case
    // order with a running double total.
    double total = 0.0;
    bool resolved = true;
    for (const ExprIr& prob : probs) {
      const std::optional<double> p = resolve(prob, assignment, *branch_box);
      if (!p) {
        resolved = false;
        break;
      }
      total += *p;
    }
    if (!resolved) {
      verdict("prob-sum", name, Verdict::kUnprovable,
              "a case probability does not resolve to a constant on every branch");
      finding("SAN044", Severity::kWarning, name,
              "cannot prove the case probabilities sum to 1: a probability does not resolve to "
              "a constant on every branch",
              "use constant_prob/complement_prob/cond_prob so each branch sums symbolically");
      return;
    }
    if (std::abs(total - 1.0) <= options_.probability_tolerance) continue;

    // Symbolic violation: confirm with a concrete enabling marking.
    for (const Marking& m : candidates(*branch_box, probs)) {
      const std::optional<bool> on = try_pred(enabled, m);
      if (!on || !*on) continue;
      double concrete = 0.0;
      bool evaluated = true;
      for (const san::Case& c : cases) {
        const std::optional<double> p = try_num(c.probability, m);
        if (!p) {
          evaluated = false;
          break;
        }
        concrete += *p;
      }
      if (evaluated && std::abs(concrete - 1.0) > options_.probability_tolerance) {
        verdict("prob-sum", name, Verdict::kRefuted,
                str_format("probabilities sum to %.12g in marking %s", concrete,
                           m.to_string().c_str()));
        finding("SAN010", Severity::kError, name,
                str_format("case probabilities sum to %.12g in marking %s (expected 1); refuted "
                           "by the prover",
                           concrete, m.to_string().c_str()),
                "make the case probabilities sum to 1 in every marking where the activity is "
                "enabled (use complement_prob for two-case activities)");
        return;
      }
    }
    verdict("prob-sum", name, Verdict::kUnprovable,
            str_format("probabilities sum to %.12g on a branch the prover cannot witness "
                       "concretely",
                       total));
    finding("SAN044", Severity::kWarning, name,
            str_format("case probabilities sum to %.12g on an abstract branch, but no concrete "
                       "witness marking was found",
                       total),
            "the branch may be unreachable; rely on the probe");
    return;
  }
  verdict("prob-sum", name, Verdict::kProved,
          conditions.empty()
              ? "constant probabilities sum to 1"
              : str_format("probabilities sum to 1 on every feasible assignment of %zu branch "
                           "condition(s)",
                           conditions.size()));
}

void Prover::prove_effects(const std::string& name, const std::vector<san::Case>& cases,
                           const san::Predicate& enabled, const MarkingBox& guard) {
  for (size_t c = 0; c < cases.size(); ++c) {
    const std::string location = name + " case " + std::to_string(c);
    const ExprIr effect = usable_ir(cases[c].effect, location);
    if (!cases[c].effect.has_ir()) opaque_finding(location, "case effect");

    const NumRange p = eval_num(guard, usable_ir(cases[c].probability, location));
    if (p.known && p.lo == 0.0 && p.hi == 0.0) {
      verdict("effect-bounds", location, Verdict::kProved, "case provably never taken");
      continue;
    }

    EffectFlags flags;
    const MarkingBox post = apply_effect(guard, effect, top_, flags);
    if (flags.opaque) {
      verdict("effect-bounds", location, Verdict::kUnprovable, "opaque effect expression");
      continue;
    }

    // Declared capacities the post-box can exceed.
    std::vector<size_t> over_capacity;
    for (size_t place = 0; place < post.places.size(); ++place) {
      const TokenInterval& cap = top_.places[place];
      if (!cap.bounded()) continue;
      if (post.places[place].hi == kUnb || post.places[place].hi > cap.hi) {
        over_capacity.push_back(place);
      }
    }
    if (flags.may_negative.empty() && over_capacity.empty()) {
      verdict("effect-bounds", location, Verdict::kProved,
              "markings stay non-negative and within declared capacities");
      continue;
    }

    // Confirm with a concrete enabling marking whose firing misbehaves.
    bool refuted = false;
    for (const Marking& m : candidates(guard, {enabled.ir(), effect})) {
      const std::optional<bool> on = try_pred(enabled, m);
      if (!on || !*on) continue;
      const std::optional<double> prob = try_num(cases[c].probability, m);
      if (!prob || *prob <= options_.probability_tolerance) continue;
      const std::optional<Marking> next = try_effect(cases[c].effect, m);
      if (!next) {
        verdict("effect-bounds", location, Verdict::kRefuted,
                "effect throws (negative marking) when fired from " + m.to_string());
        finding("SAN041", Severity::kError, location,
                "effect drives a place marking negative when fired from marking " +
                    m.to_string() + "; refuted by the prover",
                "guard the activity (or the effect with when()) so tokens are only removed "
                "where they exist");
        refuted = true;
        break;
      }
      for (size_t place : over_capacity) {
        const TokenInterval& cap = top_.places[place];
        if ((*next)[place] > cap.hi) {
          verdict("effect-bounds", location, Verdict::kRefuted,
                  str_format("firing from %s leaves %d token(s) in place '%s' (capacity %d)",
                             m.to_string().c_str(), static_cast<int>((*next)[place]),
                             model_.place_name(san::PlaceRef{place}).c_str(),
                             static_cast<int>(cap.hi)));
          finding("SAN042", Severity::kError, location,
                  str_format("firing from marking %s leaves %d token(s) in place '%s', beyond "
                             "its declared capacity %d; refuted by the prover",
                             m.to_string().c_str(), static_cast<int>((*next)[place]),
                             model_.place_name(san::PlaceRef{place}).c_str(),
                             static_cast<int>(cap.hi)),
                  "cap the effect with when(), or raise the declared capacity");
          refuted = true;
          break;
        }
      }
      if (refuted) break;
    }
    if (refuted) continue;
    verdict("effect-bounds", location, Verdict::kUnprovable,
            "the post-box may leave bounds but no concrete witness was found");
    finding("SAN044", Severity::kWarning, location,
            "cannot prove the effect keeps markings non-negative and within declared "
            "capacities",
            "the offending corner may be unreachable; rely on the probe");
  }
}

void Prover::prove_places() {
  for (size_t p = 0; p < model_.place_count(); ++p) {
    const std::string& place = model_.place_name(san::PlaceRef{p});
    const TokenInterval& iv = box_.places[p];
    if (iv.bounded()) {
      verdict("place-bounded", place, Verdict::kProved,
              str_format("tokens in [%lld, %lld] in every reachable marking",
                         static_cast<long long>(iv.lo), static_cast<long long>(iv.hi)));
      if (iv.is_point()) {
        finding("SAN022", Severity::kInfo, place,
                str_format("place holds %lld token(s) in every reachable marking (proved)",
                           static_cast<long long>(iv.lo)),
                "a constant place is often a misspelled reference or a forgotten effect");
      }
      continue;
    }
    verdict("place-bounded", place, Verdict::kUnprovable,
            "no upper bound in the interval domain (fixpoint widened to unbounded)");
    finding("SAN040", Severity::kWarning, place,
            "cannot bound the place's token count in the interval domain",
            "declare a capacity via add_place(name, initial, capacity), or cap the effects "
            "feeding the place");
  }
}

void Prover::run() {
  if (model_.place_count() == 0 || model_.timed_activities().empty()) {
    result_.fully_proved = false;
    return;
  }
  top_ = top_box();
  fixpoint();
  result_.bounds = box_;

  prove_places();

  for (const TimedActivity& activity : model_.timed_activities()) {
    if (!activity.enabled.has_ir()) opaque_finding(activity.name, "enabling predicate");
    const ExprIr guard_ir = usable_ir(activity.enabled, activity.name);
    const std::optional<MarkingBox> guard = refine(box_, guard_ir, true);
    prove_liveness(activity.name, activity.enabled, guard, /*timed=*/true, std::nullopt);
    if (!guard) {
      // Proved dead: every per-enabling-marking property holds vacuously.
      verdict("rate-positive", activity.name, Verdict::kProved, "vacuous: activity proved dead");
      verdict("prob-sum", activity.name, Verdict::kProved, "vacuous: activity proved dead");
      continue;
    }
    prove_rate(activity, *guard);
    prove_case_ranges(activity.name, activity.cases, activity.enabled, *guard);
    prove_case_sum(activity.name, activity.cases, activity.enabled, *guard);
    prove_effects(activity.name, activity.cases, activity.enabled, *guard);
  }

  for (size_t i = 0; i < model_.instantaneous_activities().size(); ++i) {
    const InstantaneousActivity& activity = model_.instantaneous_activities()[i];
    if (!activity.enabled.has_ir()) opaque_finding(activity.name, "enabling predicate");
    const ExprIr guard_ir = usable_ir(activity.enabled, activity.name);
    const std::optional<MarkingBox> guard = refine(box_, guard_ir, true);
    prove_liveness(activity.name, activity.enabled, guard, /*timed=*/false, i);
    if (!guard) {
      verdict("prob-sum", activity.name, Verdict::kProved, "vacuous: activity proved dead");
      continue;
    }
    prove_case_ranges(activity.name, activity.cases, activity.enabled, *guard);
    prove_case_sum(activity.name, activity.cases, activity.enabled, *guard);
    prove_effects(activity.name, activity.cases, activity.enabled, *guard);
  }

  result_.fully_proved =
      std::all_of(result_.verdicts.begin(), result_.verdicts.end(),
                  [](const PropertyVerdict& v) { return v.verdict == Verdict::kProved; });
  if (result_.fully_proved) {
    finding("SAN045", Severity::kInfo, "",
            str_format("fully proved: all %zu properties hold for every marking within the "
                       "computed bounds (no probe needed)",
                       result_.verdicts.size()),
            "");
  }
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kProved:
      return "proved";
    case Verdict::kRefuted:
      return "refuted";
    case Verdict::kUnprovable:
      return "unprovable";
  }
  return "unknown";
}

bool MarkingBox::contains(const san::Marking& marking) const {
  if (marking.size() != places.size()) return false;
  for (size_t p = 0; p < places.size(); ++p) {
    if (!places[p].contains(marking[p])) return false;
  }
  return true;
}

std::string MarkingBox::to_string(const san::SanModel& model) const {
  std::string out;
  for (size_t p = 0; p < places.size(); ++p) {
    if (p > 0) out += ' ';
    out += model.place_name(san::PlaceRef{p});
    if (places[p].bounded()) {
      out += str_format(":[%lld,%lld]", static_cast<long long>(places[p].lo),
                        static_cast<long long>(places[p].hi));
    } else {
      out += str_format(":[%lld,inf)", static_cast<long long>(places[p].lo));
    }
  }
  return out;
}

size_t ProofResult::count(Verdict verdict) const {
  size_t n = 0;
  for (const PropertyVerdict& v : verdicts) {
    if (v.verdict == verdict) ++n;
  }
  return n;
}

ProofResult prove_model(const san::SanModel& model, const ProveOptions& options) {
  ProofResult result;
  Prover(model, options, result).run();
  return result;
}

}  // namespace gop::lint
