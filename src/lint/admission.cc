#include "lint/admission.hh"

#include <utility>

#include "util/error.hh"

namespace gop::lint {

namespace {

/// Layers 2 and 3 against an existing chain; layer 1 already ran clean.
void check_chain_layers(const AdmissionInput& input, const AdmissionOptions& options,
                        const san::GeneratedChain& chain, Report& report) {
  report.merge(lint_chain(chain));
  for (const san::RewardStructure* reward : input.rewards) {
    GOP_REQUIRE(reward != nullptr, "admission_check: null reward structure");
    report.merge(lint_reward(chain, *reward));
  }
  const std::string& name = input.model->name();
  if (!input.transient_times.empty()) {
    report.merge(preflight_transient(chain.ctmc(), input.transient_times,
                                     options.transient_options, name, options.preflight));
  }
  if (!input.accumulated_times.empty()) {
    report.merge(preflight_accumulated(chain.ctmc(), input.accumulated_times,
                                       options.accumulated_options, name, options.preflight));
  }
  if (input.steady_state) {
    report.merge(preflight_steady_state(chain.ctmc(), options.steady_state_options, name,
                                        options.preflight));
  }
}

}  // namespace

AdmissionResult admission_check_keep_chain(const AdmissionInput& input,
                                           const AdmissionOptions& options) {
  GOP_REQUIRE(input.model != nullptr, "admission_check: null model");
  AdmissionResult result;
  result.report = lint_model(*input.model, options.model_lint);
  if (result.report.has_errors()) return result;  // generation would throw on these

  if (input.chain != nullptr) {
    check_chain_layers(input, options, *input.chain, result.report);
    return result;
  }
  // Generation signals defects as ModelError (vanishing loops, ...) and as
  // InvalidArgument (explosion guard, bad case probabilities, bad rates);
  // admission turns both into a finding instead of propagating.
  const auto generation_failed = [&](const std::exception& e) {
    result.report.add("ADM001", Severity::kError, input.model->name(), "",
                      std::string("state-space generation failed: ") + e.what(),
                      "raise GenerationOptions limits or simplify the model");
  };
  try {
    result.chain.emplace(san::generate_state_space(*input.model, options.generation));
  } catch (const ModelError& e) {
    generation_failed(e);
    return result;
  } catch (const InvalidArgument& e) {
    generation_failed(e);
    return result;
  }
  check_chain_layers(input, options, *result.chain, result.report);
  return result;
}

Report admission_check(const AdmissionInput& input, const AdmissionOptions& options) {
  return admission_check_keep_chain(input, options).report;
}

}  // namespace gop::lint
