#pragma once

/// \file model_lint.hh
/// Layer-1 static checks on a san::SanModel, run *before* state-space
/// generation. Two passes compose:
///
///  - the *prover* (lint/prove.hh) abstract-interprets the expression IR
///    over interval boxes and settles properties for ALL markings at once;
///  - the *probe* breadth-first walks the reachable markings with an
///    exception-tolerant re-implementation of the generator's firing rules:
///    where generate_state_space() would throw on first contact with a
///    defect, it records a structured finding per defect and keeps going.
///
/// The probe backs the prover up: prover refutations and proofs stand on
/// their own, while properties the prover cannot decide (opaque lambdas,
/// interval domain too coarse) fall to the probe. A fully proved model needs
/// no probe at all — SAN031 (partial coverage) disappears — and when the
/// probe covers the complete reachable set, the prover's unprovable-class
/// findings (SAN040/SAN043/SAN044) are dropped as moot. Duplicate findings
/// for the same (code, location) defect site report once, prover first.
///
/// Check codes (full catalog: docs/static-analysis.md):
///   SAN001 error   model has no places
///   SAN002 error   model has no timed activities (no time evolution)
///   SAN004 error   expression raised an error at a probed marking, or
///                  references a place the model does not have (proved
///                  statically from the IR)
///   SAN010 error   case probabilities do not sum to 1 at some marking
///   SAN011 error   case probability outside [0,1] at some marking
///   SAN012 error   enabled timed activity with non-positive/NaN/inf rate
///   SAN030 error   cycle among vanishing markings (instantaneous-activity
///                  loop: vanishing elimination would diverge; probe-only)
///   SAN041 error   effect can drive a place marking negative (witnessed)
///   SAN042 error   declared place capacity can be exceeded (witnessed)
///   SAN020 warning timed activity fires in no tangible marking
///   SAN021 warning instantaneous activity fires in no marking (disabled
///                  everywhere, or always pre-empted by priority)
///   SAN031 warning probe budget exhausted and the model is not fully
///                  proved; checks cover only a prefix of the markings
///   SAN040 warning place cannot be bounded in the interval domain
///   SAN044 warning property unprovable: interval domain too coarse
///   SAN022 info    place holds the same token count in every marking
///   SAN043 info    expression is opaque to the prover (hand-written lambda)

#include "lint/finding.hh"
#include "lint/prove.hh"
#include "san/model.hh"

namespace gop::lint {

struct ModelLintOptions {
  /// Breadth-first probing stops after this many distinct markings
  /// (tangible and vanishing); exceeding it raises SAN031, not an error.
  /// Zero disables the probe entirely: only the prover runs, and SAN031 is
  /// reported unless it fully proved the model.
  size_t max_probe_markings = 20'000;

  /// Case probabilities must sum to 1 within this tolerance and branches
  /// below it are ignored (matches san::GenerationOptions).
  double probability_tolerance = 1e-9;

  /// Run the symbolic prover before probing (lint/prove.hh).
  bool prove = true;

  /// Prover knobs; its probability_tolerance is overridden by the field
  /// above so the two passes can never disagree on what "sums to 1" means.
  ProveOptions prove_options;
};

Report lint_model(const san::SanModel& model, const ModelLintOptions& options = {});

}  // namespace gop::lint
