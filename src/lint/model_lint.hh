#pragma once

/// \file model_lint.hh
/// Layer-1 static checks on a san::SanModel, run *before* state-space
/// generation. The checker probes the reachable markings breadth-first with
/// an exception-tolerant re-implementation of the generator's firing rules:
/// where generate_state_space() would throw on first contact with a defect,
/// lint_model() records a structured finding per defect and keeps going, so
/// one run reports every problem the probe can reach.
///
/// Check codes (full catalog: docs/static-analysis.md):
///   SAN001 error   model has no places
///   SAN002 error   model has no timed activities (no time evolution)
///   SAN004 error   expression raised an error at a probed marking (for
///                  models built with san/expr.hh combinators this includes
///                  references to places the model does not have)
///   SAN010 error   case probabilities do not sum to 1 at a probed marking
///   SAN011 error   case probability outside [0,1] at a probed marking
///   SAN012 error   enabled timed activity with non-positive/NaN/inf rate
///   SAN030 error   cycle among vanishing markings (instantaneous-activity
///                  loop: vanishing elimination would diverge)
///   SAN020 warning timed activity fires in no probed tangible marking
///   SAN021 warning instantaneous activity fires in no probed marking
///                  (disabled everywhere, or always pre-empted by priority)
///   SAN031 warning probe budget exhausted; checks cover only a prefix of
///                  the reachable markings
///   SAN022 info    place holds the same token count in every probed marking

#include "lint/finding.hh"
#include "san/model.hh"

namespace gop::lint {

struct ModelLintOptions {
  /// Breadth-first probing stops after this many distinct markings
  /// (tangible and vanishing); exceeding it raises SAN031, not an error.
  size_t max_probe_markings = 20'000;

  /// Case probabilities must sum to 1 within this tolerance and branches
  /// below it are ignored (matches san::GenerationOptions).
  double probability_tolerance = 1e-9;
};

Report lint_model(const san::SanModel& model, const ModelLintOptions& options = {});

}  // namespace gop::lint
