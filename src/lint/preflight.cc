#include "lint/preflight.hh"

#include <algorithm>
#include <cmath>

#include "markov/fox_glynn.hh"
#include "markov/uniformization.hh"
#include "san/lint.hh"
#include "util/strings.hh"

namespace gop::lint {

namespace {

/// PRE001 plus the largest valid time (negative when none). Both transient
/// and accumulated grids obey the same contract: finite, non-negative times.
double check_time_grid(std::span<const double> times, const std::string& model_name,
                       Report& report) {
  size_t invalid = 0;
  double example = 0.0;
  double t_max = -1.0;
  for (double t : times) {
    if (!(t >= 0.0) || !std::isfinite(t)) {
      if (invalid == 0) example = t;
      ++invalid;
      continue;
    }
    t_max = std::max(t_max, t);
  }
  if (invalid > 0) {
    report.add("PRE001", Severity::kError, model_name, "",
               str_format("time grid holds %zu invalid entr%s (e.g. %g); times must be finite "
                          "and non-negative",
                          invalid, invalid == 1 ? "y" : "ies", example),
               "filter the grid before solving");
  }
  return t_max;
}

/// PRE002..PRE005 for a uniformization run to horizon `t_max`.
void check_uniformization(const markov::Ctmc& chain, double t_max,
                          const markov::UniformizationOptions& uniform,
                          const std::string& model_name, const PreflightOptions& preflight,
                          Report& report) {
  if (!(uniform.epsilon >= markov::kMinPoissonEpsilon && uniform.epsilon < 1.0)) {
    // Mirrors the solver refusal exactly: poisson_window requires epsilon in
    // [kMinPoissonEpsilon, 1) — below that its internal normalization floor
    // underflows, so the run would throw, not merely lose accuracy.
    report.add("PRE005", Severity::kError, model_name, "",
               str_format("Fox-Glynn epsilon = %g is outside [%g, 1); the uniformization solver "
                          "will refuse to build the Poisson window",
                          uniform.epsilon, markov::kMinPoissonEpsilon),
               "use a truncation budget in [1e-300, 1), e.g. 1e-12");
  } else if (uniform.epsilon < preflight.min_epsilon) {
    report.add("PRE005", Severity::kWarning, model_name, "",
               str_format("Fox-Glynn epsilon = %g is below double precision (~%g); the truncated "
                          "window cannot honour the request",
                          uniform.epsilon, preflight.min_epsilon),
               "budgets tighter than ~1e-15 only add window width, not accuracy");
  }

  if (t_max < 0.0) return;  // no valid horizon
  const double lambda = markov::uniformization_rate(chain, uniform);
  const double lambda_t = lambda * t_max;
  if (lambda_t > uniform.max_lambda_t) {
    report.add("PRE002", Severity::kError, model_name, "",
               str_format("Lambda*t = %.3g exceeds max_lambda_t = %.3g: the uniformization "
                          "solver will refuse this horizon",
                          lambda_t, uniform.max_lambda_t),
               "use the dense matrix exponential (TransientMethod::kMatrixExponential) for stiff "
               "horizons, or raise max_lambda_t knowingly");
  } else if (lambda_t > preflight.warn_lambda_t) {
    report.add("PRE003", Severity::kWarning, model_name, "",
               str_format("Lambda*t = %.3g: uniformization performs on the order of that many "
                          "sparse matrix-vector products",
                          lambda_t),
               "consider the dense matrix exponential when the chain is small, or a coarser "
               "horizon");
  }

  double min_exit = 0.0;
  for (double rate : chain.exit_rates()) {
    if (rate > 0.0 && (min_exit == 0.0 || rate < min_exit)) min_exit = rate;
  }
  if (min_exit > 0.0 && chain.max_exit_rate() / min_exit > preflight.warn_stiffness_ratio) {
    report.add("PRE004", Severity::kWarning, model_name, "",
               str_format("stiff chain: exit rates span %.3g .. %.3g (ratio %.3g); the "
                          "uniformization step count follows the fastest rate while the horizon "
                          "follows the slowest",
                          min_exit, chain.max_exit_rate(), chain.max_exit_rate() / min_exit),
               "the dense matrix exponential is stiffness-robust at this library's model sizes");
  }
}

}  // namespace

Report preflight_transient(const markov::Ctmc& chain, std::span<const double> times,
                           const markov::TransientOptions& options,
                           const std::string& model_name, const PreflightOptions& preflight) {
  Report report;
  const double t_max = check_time_grid(times, model_name, report);
  if (t_max < 0.0) return report;
  if (markov::resolve_transient_method(chain, t_max, options) ==
      markov::TransientMethod::kUniformization) {
    check_uniformization(chain, t_max, options.uniformization, model_name, preflight, report);
  }
  return report;
}

Report preflight_accumulated(const markov::Ctmc& chain, std::span<const double> times,
                             const markov::AccumulatedOptions& options,
                             const std::string& model_name, const PreflightOptions& preflight) {
  Report report;
  const double t_max = check_time_grid(times, model_name, report);
  if (t_max < 0.0) return report;
  if (markov::resolve_accumulated_method(chain, t_max, options) ==
      markov::AccumulatedMethod::kUniformization) {
    check_uniformization(chain, t_max, options.uniformization, model_name, preflight, report);
  }
  return report;
}

Report preflight_steady_state(const markov::Ctmc& chain, const markov::SteadyStateOptions& options,
                              const std::string& model_name, const PreflightOptions& preflight) {
  (void)preflight;
  Report report;

  size_t component_count = 0;
  const std::vector<size_t> component =
      san::strongly_connected_components(chain, &component_count);
  if (component_count == 1) return report;

  // Bottom components (no exit) are the recurrent classes.
  std::vector<bool> has_exit(component_count, false);
  const linalg::CsrMatrix& rates = chain.rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      if (component[rates.col_idx()[k]] != component[s]) has_exit[component[s]] = true;
    }
  }
  size_t recurrent = 0;
  for (bool exits : has_exit) {
    if (!exits) ++recurrent;
  }

  if (recurrent > 1) {
    report.add("PRE010", Severity::kError, model_name, "",
               str_format("steady state requested on a chain with %zu recurrent classes: there "
                          "is no unique stationary distribution",
                          recurrent),
               "condition on one class (restrict the initial marking) or analyse the classes "
               "separately");
    return report;
  }

  const markov::SteadyStateMethod method = markov::resolve_steady_state_method(chain, options);
  bool has_absorbing = false;
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.is_absorbing(s)) has_absorbing = true;
  }
  if (method == markov::SteadyStateMethod::kGth) {
    report.add("PRE011", Severity::kError, model_name, "",
               str_format("chain is reducible (%zu components, one recurrent class): the GTH "
                          "solver refuses reducible chains",
                          component_count),
               "use SteadyStateMethod::kPower (transient states receive probability 0) or lump "
               "the transient states away");
  } else if (method == markov::SteadyStateMethod::kGaussSeidel && has_absorbing) {
    report.add("PRE011", Severity::kError, model_name, "",
               "chain has absorbing states: the Gauss-Seidel solver requires an exit transition "
               "from every state",
               "use SteadyStateMethod::kPower for chains with absorbing states");
  } else {
    report.add("PRE011", Severity::kInfo, model_name, "",
               str_format("chain is reducible (%zu components) with one recurrent class; the "
                          "iterative steady-state solvers converge, with probability 0 on the "
                          "transient states",
                          component_count),
               "");
  }
  return report;
}

}  // namespace gop::lint
