#include "lint/preflight.hh"

#include <algorithm>
#include <cmath>

#include "markov/fox_glynn.hh"
#include "markov/krylov.hh"
#include "markov/solver_plan.hh"
#include "markov/uniformization.hh"
#include "san/lint.hh"
#include "util/strings.hh"

namespace gop::lint {

namespace {

/// PRE001 plus the largest valid time (negative when none). Both transient
/// and accumulated grids obey the same contract: finite, non-negative times.
double check_time_grid(std::span<const double> times, const std::string& model_name,
                       Report& report) {
  size_t invalid = 0;
  double example = 0.0;
  double t_max = -1.0;
  for (double t : times) {
    if (!(t >= 0.0) || !std::isfinite(t)) {
      if (invalid == 0) example = t;
      ++invalid;
      continue;
    }
    t_max = std::max(t_max, t);
  }
  if (invalid > 0) {
    report.add("PRE001", Severity::kError, model_name, "",
               str_format("time grid holds %zu invalid entr%s (e.g. %g); times must be finite "
                          "and non-negative",
                          invalid, invalid == 1 ? "y" : "ies", example),
               "filter the grid before solving");
  }
  return t_max;
}

/// PRE006..PRE008 for a Krylov expv run: the plan resolved kKrylov, so
/// predict the refusals of markov::krylov_expv before it runs.
void check_krylov(const markov::SolverPlan& plan, const markov::KrylovOptions& krylov,
                  const std::string& model_name, const PreflightOptions& preflight,
                  Report& report) {
  if (krylov.basis_dimension < 2) {
    report.add("PRE006", Severity::kError, model_name, "",
               str_format("Krylov basis dimension = %zu: the Arnoldi process needs at least 2 "
                          "vectors to form the local error estimate",
                          krylov.basis_dimension),
               "use the default basis dimension (30) or anything >= 2");
  } else if (krylov.basis_dimension > plan.states) {
    report.add("PRE006", Severity::kInfo, model_name, "",
               str_format("Krylov basis dimension = %zu exceeds the chain dimension %zu; the "
                          "solver clamps the basis to n and the action becomes exact",
                          krylov.basis_dimension, plan.states),
               "");
  }

  if (!(krylov.tolerance > 0.0 && krylov.tolerance < 1.0) || !std::isfinite(krylov.tolerance)) {
    report.add("PRE007", Severity::kError, model_name, "",
               str_format("Krylov tolerance = %g is outside (0, 1): at or below 0 no sub-step "
                          "is ever accepted (the budget is exhausted); at or above 1 every "
                          "sub-step is accepted regardless of its error",
                          krylov.tolerance),
               "use a tolerance in (0, 1), e.g. the default 1e-12");
  } else if (krylov.tolerance < preflight.min_epsilon) {
    report.add("PRE007", Severity::kWarning, model_name, "",
               str_format("Krylov tolerance = %g is below double precision (~%g); tighter "
                          "budgets only shrink the sub-steps, not the error",
                          krylov.tolerance, preflight.min_epsilon),
               "budgets tighter than ~1e-15 add sub-steps without adding accuracy");
  }

  // Each accepted sub-step advances roughly basis_dimension units of
  // Lambda*t, so Lambda*t / basis is a low estimate of the sub-steps needed.
  const double basis = static_cast<double>(std::max<size_t>(krylov.basis_dimension, 1));
  if (plan.lambda_t / basis > static_cast<double>(krylov.max_substeps)) {
    report.add("PRE008", Severity::kWarning, model_name, "",
               str_format("Krylov sub-step budget %zu looks too small for Lambda*t = %.3g with a "
                          "basis of %zu (estimate ~%.3g sub-steps); the solve would throw after "
                          "exhausting the budget",
                          krylov.max_substeps, plan.lambda_t, krylov.basis_dimension,
                          plan.lambda_t / basis),
               "raise KrylovOptions::max_substeps or widen the basis");
  }
}

/// PRE002..PRE005 for a uniformization run to horizon `t_max`.
void check_uniformization(const markov::Ctmc& chain, double t_max,
                          const markov::UniformizationOptions& uniform,
                          const std::string& model_name, const PreflightOptions& preflight,
                          Report& report) {
  if (!(uniform.epsilon >= markov::kMinPoissonEpsilon && uniform.epsilon < 1.0)) {
    // Mirrors the solver refusal exactly: poisson_window requires epsilon in
    // [kMinPoissonEpsilon, 1) — below that its internal normalization floor
    // underflows, so the run would throw, not merely lose accuracy.
    report.add("PRE005", Severity::kError, model_name, "",
               str_format("Fox-Glynn epsilon = %g is outside [%g, 1); the uniformization solver "
                          "will refuse to build the Poisson window",
                          uniform.epsilon, markov::kMinPoissonEpsilon),
               "use a truncation budget in [1e-300, 1), e.g. 1e-12");
  } else if (uniform.epsilon < preflight.min_epsilon) {
    report.add("PRE005", Severity::kWarning, model_name, "",
               str_format("Fox-Glynn epsilon = %g is below double precision (~%g); the truncated "
                          "window cannot honour the request",
                          uniform.epsilon, preflight.min_epsilon),
               "budgets tighter than ~1e-15 only add window width, not accuracy");
  }

  if (t_max < 0.0) return;  // no valid horizon
  const double lambda = markov::uniformization_rate(chain, uniform);
  const double lambda_t = lambda * t_max;
  if (lambda_t > uniform.max_lambda_t) {
    report.add("PRE002", Severity::kError, model_name, "",
               str_format("Lambda*t = %.3g exceeds max_lambda_t = %.3g: the uniformization "
                          "solver will refuse this horizon",
                          lambda_t, uniform.max_lambda_t),
               "use the dense matrix exponential (TransientMethod::kMatrixExponential) for stiff "
               "horizons, or raise max_lambda_t knowingly");
  } else if (lambda_t > preflight.warn_lambda_t) {
    report.add("PRE003", Severity::kWarning, model_name, "",
               str_format("Lambda*t = %.3g: uniformization performs on the order of that many "
                          "sparse matrix-vector products",
                          lambda_t),
               "consider the dense matrix exponential when the chain is small, or a coarser "
               "horizon");
  }

  double min_exit = 0.0;
  for (double rate : chain.exit_rates()) {
    if (rate > 0.0 && (min_exit == 0.0 || rate < min_exit)) min_exit = rate;
  }
  if (min_exit > 0.0 && chain.max_exit_rate() / min_exit > preflight.warn_stiffness_ratio) {
    report.add("PRE004", Severity::kWarning, model_name, "",
               str_format("stiff chain: exit rates span %.3g .. %.3g (ratio %.3g); the "
                          "uniformization step count follows the fastest rate while the horizon "
                          "follows the slowest",
                          min_exit, chain.max_exit_rate(), chain.max_exit_rate() / min_exit),
               "the dense matrix exponential is stiffness-robust at this library's model sizes");
  }
}

}  // namespace

Report preflight_transient(const markov::Ctmc& chain, std::span<const double> times,
                           const markov::TransientOptions& options,
                           const std::string& model_name, const PreflightOptions& preflight) {
  Report report;
  const double t_max = check_time_grid(times, model_name, report);
  if (t_max < 0.0) return report;
  const markov::SolverPlan plan = markov::plan_transient(chain, t_max, options);
  if (plan.transient == markov::TransientMethod::kUniformization) {
    check_uniformization(chain, t_max, options.uniformization, model_name, preflight, report);
  } else if (plan.transient == markov::TransientMethod::kKrylov) {
    check_krylov(plan, options.krylov, model_name, preflight, report);
  }
  return report;
}

Report preflight_accumulated(const markov::Ctmc& chain, std::span<const double> times,
                             const markov::AccumulatedOptions& options,
                             const std::string& model_name, const PreflightOptions& preflight) {
  Report report;
  const double t_max = check_time_grid(times, model_name, report);
  if (t_max < 0.0) return report;
  const markov::SolverPlan plan = markov::plan_accumulated(chain, t_max, options);
  if (plan.accumulated == markov::AccumulatedMethod::kUniformization) {
    check_uniformization(chain, t_max, options.uniformization, model_name, preflight, report);
  } else if (plan.accumulated == markov::AccumulatedMethod::kKrylov) {
    check_krylov(plan, options.krylov, model_name, preflight, report);
  }
  return report;
}

Report preflight_steady_state(const markov::Ctmc& chain, const markov::SteadyStateOptions& options,
                              const std::string& model_name, const PreflightOptions& preflight) {
  (void)preflight;
  Report report;

  size_t component_count = 0;
  const std::vector<size_t> component =
      san::strongly_connected_components(chain, &component_count);
  if (component_count == 1) return report;

  // Bottom components (no exit) are the recurrent classes.
  std::vector<bool> has_exit(component_count, false);
  const linalg::CsrMatrix& rates = chain.rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      if (component[rates.col_idx()[k]] != component[s]) has_exit[component[s]] = true;
    }
  }
  size_t recurrent = 0;
  for (bool exits : has_exit) {
    if (!exits) ++recurrent;
  }

  if (recurrent > 1) {
    report.add("PRE010", Severity::kError, model_name, "",
               str_format("steady state requested on a chain with %zu recurrent classes: there "
                          "is no unique stationary distribution",
                          recurrent),
               "condition on one class (restrict the initial marking) or analyse the classes "
               "separately");
    return report;
  }

  const markov::SteadyStateMethod method = markov::resolve_steady_state_method(chain, options);
  bool has_absorbing = false;
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.is_absorbing(s)) has_absorbing = true;
  }
  if (method == markov::SteadyStateMethod::kGth) {
    report.add("PRE011", Severity::kError, model_name, "",
               str_format("chain is reducible (%zu components, one recurrent class): the GTH "
                          "solver refuses reducible chains",
                          component_count),
               "use SteadyStateMethod::kPower (transient states receive probability 0) or lump "
               "the transient states away");
  } else if (method == markov::SteadyStateMethod::kGaussSeidel && has_absorbing) {
    report.add("PRE011", Severity::kError, model_name, "",
               "chain has absorbing states: the Gauss-Seidel solver requires an exit transition "
               "from every state",
               "use SteadyStateMethod::kPower for chains with absorbing states");
  } else {
    report.add("PRE011", Severity::kInfo, model_name, "",
               str_format("chain is reducible (%zu components) with one recurrent class; the "
                          "iterative steady-state solvers converge, with probability 0 on the "
                          "transient states",
                          component_count),
               "");
  }
  return report;
}

}  // namespace gop::lint
