#pragma once

/// \file chain_lint.hh
/// Layer-2 static checks on generated chains (and raw CTMC generator data),
/// run after state-space generation and before any solver. These absorb the
/// legacy san::diagnose() analyses — dead activities, absorbing states,
/// irreducibility / recurrent classes — into the findings API, and add
/// generator-validity and reward-structure checks.
///
/// Check codes (full catalog: docs/static-analysis.md):
///   CHN002 error   generator row sums do not match the exit rates
///   CHN003 error   negative or non-finite off-diagonal rate entry
///   CHN004 error   initial distribution is not a probability vector
///   CHN001 warning states unreachable from the initial distribution
///   CHN010 warning timed activity enabled in no reachable tangible marking
///   CHN011 info    absorbing states present
///   CHN012 info    chain is not irreducible (expected for dependability
///                  models; steady-state *misuse* is PRE010/PRE011's job)
///   CHN013 info    multiple recurrent classes (the long-run behaviour
///                  depends on the starting state)
///   RWD002 error   non-finite rate reward at a reachable marking
///   RWD004 error   impulse reward on an instantaneous activity
///   RWD001 warning rate-reward predicate holds in no reachable marking
///   RWD003 warning impulse reward on an activity labelling no transition

#include <string>
#include <vector>

#include "lint/finding.hh"
#include "linalg/csr_matrix.hh"
#include "markov/ctmc.hh"
#include "san/reward.hh"
#include "san/state_space.hh"

namespace gop::lint {

struct ChainLintOptions {
  /// Row-sum consistency tolerance, relative to max(1, exit rate).
  double row_sum_tolerance = 1e-9;
  /// Tolerance for the initial distribution to be a probability vector.
  double probability_tolerance = 1e-9;
  /// At most this many example states are named per finding.
  size_t max_examples = 5;
};

/// Generator-validity checks (CHN001..CHN004) on raw CSR data: `rates` is the
/// off-diagonal rate matrix, `exit_rates` the diagonal it must be consistent
/// with, `initial` the initial distribution. The markov::Ctmc constructor
/// rejects most of these outright — this entry point exists so externally
/// assembled generators (and tests seeding defects) get the same verdicts as
/// chains built through the front door.
Report lint_generator(const linalg::CsrMatrix& rates, const std::vector<double>& exit_rates,
                      const std::vector<double>& initial, const std::string& model_name,
                      const ChainLintOptions& options = {});

/// Generator validity plus communication structure (CHN011..CHN013) on a
/// CTMC.
Report lint_ctmc(const markov::Ctmc& chain, const std::string& model_name = "",
                 const ChainLintOptions& options = {});

/// All lint_ctmc checks plus the SAN-aware ones (CHN010) on a generated
/// chain. This is the findings-API successor of san::diagnose().
Report lint_chain(const san::GeneratedChain& chain, const ChainLintOptions& options = {});

/// Reward-structure checks (RWD001..RWD004) against a chain's reachable
/// markings and transition labels.
Report lint_reward(const san::GeneratedChain& chain, const san::RewardStructure& reward,
                   const ChainLintOptions& options = {});

}  // namespace gop::lint
