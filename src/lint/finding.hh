#pragma once

/// \file finding.hh
/// gop::lint — structured static-analysis findings. Every check in the lint
/// subsystem (model checks, chain checks, solver preflight) reports through
/// this API: a stable check code, a severity, the model/location the finding
/// is about, a message and a fix hint. The catalog of codes lives in
/// docs/static-analysis.md; the `gop_lint` CLI renders reports as text or
/// JSON and the PerformabilityAnalyzer's preflight gate turns error-severity
/// findings into gop::ModelError before any solver runs.

#include <cstddef>
#include <string>
#include <vector>

namespace gop::lint {

enum class Severity {
  kInfo = 0,     ///< worth knowing, never blocks
  kWarning = 1,  ///< probably a modeling mistake; solvers still run
  kError = 2,    ///< the model/solve is unusable; gates fail on these
};

/// "info" | "warning" | "error".
const char* severity_name(Severity severity);

struct Finding {
  std::string code;      ///< stable check id, e.g. "SAN010" (docs/static-analysis.md)
  Severity severity = Severity::kInfo;
  std::string model;     ///< model or chain the finding is about ("" when n/a)
  std::string location;  ///< place/activity/state/reward within the model ("" when n/a)
  std::string message;   ///< what is wrong, with concrete values
  std::string hint;      ///< how to fix it ("" when there is no generic fix)
};

/// An ordered collection of findings. Order is the order checks ran in
/// (deterministic); renderers group by severity only in the summary line.
class Report {
 public:
  Report& add(Finding finding);
  Report& add(std::string code, Severity severity, std::string model, std::string location,
              std::string message, std::string hint = "");

  /// Appends another report's findings (checks compose into batteries).
  Report& merge(Report other);

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// True when some finding carries `code` (tests pin detection with this).
  bool has_code(const std::string& code) const;

  /// One line per finding plus a trailing count summary:
  ///   error   SAN010 [model/relay] case probabilities sum to 0.6 ...
  ///           hint: ...
  ///   1 error(s), 0 warning(s), 0 info(s)
  /// An empty report renders as "no findings\n".
  std::string to_text() const;

  /// {"findings":[{"code":...,"severity":...,...}],
  ///  "counts":{"error":N,"warning":N,"info":N}}
  std::string to_json() const;

  /// Throws gop::ModelError carrying `context` and to_text() when the report
  /// holds error-severity findings; otherwise does nothing.
  void throw_if_errors(const std::string& context) const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace gop::lint
