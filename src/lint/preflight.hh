#pragma once

/// \file preflight.hh
/// Layer-3 solver preflight: predicts, before any solver runs, whether the
/// requested (chain, time grid, options) combination will be refused, slow,
/// or numerically fragile. Each family computes the same markov::SolverPlan
/// the dispatcher will compute (markov::plan_transient and friends) and
/// checks the engine that plan actually selects — the plan is the single
/// home of the kAuto cutoffs, so preflight mirrors it instead of
/// re-implementing it. The PerformabilityAnalyzer runs these on every
/// evaluate()/evaluate_batch() grid when preflight is enabled, failing fast
/// with a diagnostic instead of NaNs or a deep solver throw.
///
/// Check codes (full catalog: docs/static-analysis.md):
///   PRE001 error   invalid time grid (negative, NaN or infinite entries)
///   PRE002 error   uniformization would refuse: Lambda*t exceeds
///                  UniformizationOptions::max_lambda_t
///   PRE010 error   steady state requested on a chain with several
///                  recurrent classes (no unique stationary distribution)
///   PRE011 error/  chain is reducible: GTH refuses it outright (error);
///          info    with a unique recurrent class the iterative methods
///                  still converge (info)
///   PRE003 warning Lambda*t large: uniformization needs ~Lambda*t
///                  matrix-vector products per time point
///   PRE004 warning stiff chain (max/min exit-rate ratio) handed to
///                  uniformization
///   PRE005 warning Fox-Glynn epsilon below what double precision honours
///                  (error when below markov::kMinPoissonEpsilon, where the
///                  solver refuses the window outright)
///   PRE006 error/  Krylov basis dimension under 2 cannot form the Arnoldi
///          info    error estimate (error); a basis wider than the chain is
///                  silently clamped to n (info)
///   PRE007 error/  Krylov tolerance outside (0, 1) or non-finite: either no
///          warning sub-step is ever accepted or every one is (error); below
///                  double precision it only adds sub-steps (warning)
///   PRE008 warning Krylov sub-step budget looks too small for Lambda*t:
///                  the solve would throw after max_substeps

#include <span>
#include <string>

#include "lint/finding.hh"
#include "markov/accumulated.hh"
#include "markov/ctmc.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"

namespace gop::lint {

struct PreflightOptions {
  /// Lambda*t above which a uniformization run is flagged as slow (PRE003).
  double warn_lambda_t = 1e5;
  /// Exit-rate ratio above which the chain counts as stiff (PRE004).
  double warn_stiffness_ratio = 1e6;
  /// Fox-Glynn truncation budgets below this are unachievable in doubles
  /// (PRE005).
  double min_epsilon = 1e-15;
};

/// Preflight for transient_distribution / transient_reward over `times`.
Report preflight_transient(const markov::Ctmc& chain, std::span<const double> times,
                           const markov::TransientOptions& options = {},
                           const std::string& model_name = "",
                           const PreflightOptions& preflight = {});

/// Preflight for accumulated_occupancy / accumulated_reward over `times`.
Report preflight_accumulated(const markov::Ctmc& chain, std::span<const double> times,
                             const markov::AccumulatedOptions& options = {},
                             const std::string& model_name = "",
                             const PreflightOptions& preflight = {});

/// Preflight for steady_state_distribution / steady_state_reward.
Report preflight_steady_state(const markov::Ctmc& chain,
                              const markov::SteadyStateOptions& options = {},
                              const std::string& model_name = "",
                              const PreflightOptions& preflight = {});

}  // namespace gop::lint
