#include "lint/model_lint.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "san/marking.hh"
#include "util/strings.hh"

namespace gop::lint {

namespace {

using san::Case;
using san::InstantaneousActivity;
using san::Marking;
using san::MarkingHash;
using san::SanModel;
using san::TimedActivity;

/// Exception-tolerant breadth-first probe of the reachable markings. Mirrors
/// the firing rules of san::generate_state_space (highest-priority enabled
/// instantaneous activities pre-empt timed ones; probabilistic cases) but
/// converts every defect the generator would throw on into a finding.
class Prober {
 public:
  Prober(const SanModel& model, const ModelLintOptions& options, Report& report)
      : model_(model), options_(options), report_(report) {}

  void run() {
    timed_fired_.assign(model_.timed_activities().size(), false);
    instant_fired_.assign(model_.instantaneous_activities().size(), false);
    token_min_.assign(model_.place_count(), std::numeric_limits<int32_t>::max());
    token_max_.assign(model_.place_count(), std::numeric_limits<int32_t>::min());

    intern(model_.initial_marking());
    while (!frontier_.empty()) {
      if (truncated_) break;
      const Marking marking = markings_[frontier_.front()];
      frontier_.pop_front();
      probe(marking);
    }

    finish();
  }

 private:
  void intern(const Marking& marking) {
    if (truncated_) return;
    auto [it, inserted] = index_.try_emplace(marking, markings_.size());
    if (!inserted) return;
    if (markings_.size() >= options_.max_probe_markings) {
      truncated_ = true;
      index_.erase(it);
      return;
    }
    markings_.push_back(marking);
    frontier_.push_back(it->second);
    for (size_t p = 0; p < model_.place_count(); ++p) {
      token_min_[p] = std::min(token_min_[p], marking[p]);
      token_max_[p] = std::max(token_max_[p], marking[p]);
    }
  }

  /// Records one finding per (code, location) pair: the first offending
  /// marking names the defect; repeats across markings add no signal.
  void report_once(const char* code, Severity severity, const std::string& location,
                   std::string message, std::string hint) {
    if (!reported_.insert(std::string(code) + '\0' + location).second) return;
    report_.add(code, severity, model_.name(), location, std::move(message), std::move(hint));
  }

  void expression_error(const std::string& location, const Marking& marking,
                        const std::exception& e) {
    report_once("SAN004", Severity::kError, location,
                "expression raised an error in marking " + marking.to_string() + ": " + e.what(),
                "expressions must be total over reachable markings and reference only places the "
                "model declares");
  }

  /// Evaluates the cases' probabilities at `marking`, reporting range and
  /// sum defects. Returns the probabilities (0 for a throwing case).
  std::vector<double> check_cases(const std::string& activity_name,
                                  const std::vector<Case>& cases, const Marking& marking) {
    std::vector<double> probabilities(cases.size(), 0.0);
    double total = 0.0;
    bool evaluated_all = true;
    for (size_t c = 0; c < cases.size(); ++c) {
      double p = 0.0;
      try {
        p = cases[c].probability(marking);
      } catch (const std::exception& e) {
        expression_error(activity_name + " case " + std::to_string(c), marking, e);
        evaluated_all = false;
        continue;
      }
      if (!(p >= -options_.probability_tolerance && p <= 1.0 + options_.probability_tolerance)) {
        report_once("SAN011", Severity::kError, activity_name,
                    str_format("case %zu has probability %g in marking %s (outside [0,1])", c, p,
                               marking.to_string().c_str()),
                    "case probabilities are probabilities; clamp or renormalize the expression");
        evaluated_all = false;
        continue;
      }
      probabilities[c] = p;
      total += p;
    }
    if (evaluated_all && std::abs(total - 1.0) > options_.probability_tolerance) {
      report_once("SAN010", Severity::kError, activity_name,
                  str_format("case probabilities sum to %.12g in marking %s (expected 1)", total,
                             marking.to_string().c_str()),
                  "make the case probabilities sum to 1 in every marking where the activity is "
                  "enabled (use complement_prob for two-case activities)");
    }
    return probabilities;
  }

  /// Applies case effects and interns the successors; returns them so the
  /// vanishing-cycle graph can be recorded.
  std::vector<Marking> fire_cases(const std::string& activity_name, const std::vector<Case>& cases,
                                  const std::vector<double>& probabilities,
                                  const Marking& marking) {
    std::vector<Marking> successors;
    for (size_t c = 0; c < cases.size(); ++c) {
      if (probabilities[c] <= options_.probability_tolerance) continue;
      Marking next = marking;
      try {
        cases[c].effect(next);
      } catch (const std::exception& e) {
        expression_error(activity_name + " case " + std::to_string(c), marking, e);
        continue;
      }
      intern(next);
      successors.push_back(std::move(next));
    }
    return successors;
  }

  /// The instantaneous activities that would fire in `marking` (highest
  /// enabled priority level), exactly as the generator selects them.
  std::vector<size_t> firing_instantaneous(const Marking& marking) {
    std::vector<size_t> firing;
    int best_priority = 0;
    for (size_t i = 0; i < model_.instantaneous_activities().size(); ++i) {
      const InstantaneousActivity& activity = model_.instantaneous_activities()[i];
      bool enabled = false;
      try {
        enabled = activity.enabled(marking);
      } catch (const std::exception& e) {
        expression_error(activity.name, marking, e);
        continue;
      }
      if (!enabled) continue;
      if (firing.empty() || activity.priority > best_priority) {
        firing.clear();
        best_priority = activity.priority;
      }
      if (activity.priority == best_priority) firing.push_back(i);
    }
    return firing;
  }

  void probe(const Marking& marking) {
    const std::vector<size_t> firing = firing_instantaneous(marking);
    if (!firing.empty()) {
      // Vanishing marking: only the selected instantaneous activities fire.
      const size_t source = vanishing_id(marking);
      for (size_t i : firing) {
        const InstantaneousActivity& activity = model_.instantaneous_activities()[i];
        instant_fired_[i] = true;
        const std::vector<double> probabilities =
            check_cases(activity.name, activity.cases, marking);
        for (const Marking& next : fire_cases(activity.name, activity.cases, probabilities,
                                              marking)) {
          if (!firing_instantaneous_quiet(next).empty()) {
            const size_t target = vanishing_id(next);  // may reallocate vanishing_edges_
            vanishing_edges_[source].push_back(target);
          }
        }
      }
      return;
    }

    // Tangible marking: timed activities fire.
    for (size_t i = 0; i < model_.timed_activities().size(); ++i) {
      const TimedActivity& activity = model_.timed_activities()[i];
      bool enabled = false;
      try {
        enabled = activity.enabled(marking);
      } catch (const std::exception& e) {
        expression_error(activity.name, marking, e);
        continue;
      }
      if (!enabled) continue;
      timed_fired_[i] = true;

      try {
        const double rate = activity.rate(marking);
        if (!(rate > 0.0) || !std::isfinite(rate)) {
          report_once("SAN012", Severity::kError, activity.name,
                      str_format("rate evaluates to %g in enabling marking %s (must be positive "
                                 "and finite)",
                                 rate, marking.to_string().c_str()),
                      "guard the rate expression so it is positive and finite wherever the "
                      "activity is enabled");
        }
      } catch (const std::exception& e) {
        expression_error(activity.name, marking, e);
      }

      const std::vector<double> probabilities = check_cases(activity.name, activity.cases, marking);
      fire_cases(activity.name, activity.cases, probabilities, marking);
    }
  }

  /// `firing_instantaneous` without findings, for classifying successors.
  std::vector<size_t> firing_instantaneous_quiet(const Marking& marking) const {
    std::vector<size_t> firing;
    int best_priority = 0;
    for (size_t i = 0; i < model_.instantaneous_activities().size(); ++i) {
      const InstantaneousActivity& activity = model_.instantaneous_activities()[i];
      bool enabled = false;
      try {
        enabled = activity.enabled(marking);
      } catch (const std::exception&) {
        continue;
      }
      if (!enabled) continue;
      if (firing.empty() || activity.priority > best_priority) {
        firing.clear();
        best_priority = activity.priority;
      }
      if (activity.priority == best_priority) firing.push_back(i);
    }
    return firing;
  }

  size_t vanishing_id(const Marking& marking) {
    auto [it, inserted] = vanishing_index_.try_emplace(marking, vanishing_markings_.size());
    if (inserted) {
      vanishing_markings_.push_back(marking);
      vanishing_edges_.emplace_back();
    }
    return it->second;
  }

  void check_vanishing_cycles() {
    // Tri-color DFS over the vanishing-marking graph: a back edge is a loop
    // of zero-time firings, on which vanishing elimination diverges.
    enum class Color { kWhite, kGray, kBlack };
    std::vector<Color> color(vanishing_markings_.size(), Color::kWhite);
    struct Frame {
      size_t node;
      size_t edge;
    };
    for (size_t root = 0; root < vanishing_markings_.size(); ++root) {
      if (color[root] != Color::kWhite) continue;
      std::vector<Frame> stack{{root, 0}};
      color[root] = Color::kGray;
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.edge < vanishing_edges_[frame.node].size()) {
          const size_t next = vanishing_edges_[frame.node][frame.edge++];
          if (color[next] == Color::kGray) {
            report_.add("SAN030", Severity::kError, model_.name(), "",
                        "cycle among vanishing markings through " +
                            vanishing_markings_[next].to_string() +
                            ": instantaneous activities re-enable each other in zero time",
                        "break the loop with a timed activity or a guard; vanishing elimination "
                        "cannot terminate on it");
            return;
          }
          if (color[next] == Color::kWhite) {
            color[next] = Color::kGray;
            stack.push_back(Frame{next, 0});
          }
          continue;
        }
        color[frame.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }

  void finish() {
    for (size_t i = 0; i < timed_fired_.size(); ++i) {
      if (timed_fired_[i]) continue;
      report_.add("SAN020", Severity::kWarning, model_.name(),
                  model_.timed_activities()[i].name,
                  "timed activity fires in no probed tangible marking",
                  "the enabling predicate never holds (or only in vanishing markings); check the "
                  "guard and the initial marking");
    }
    for (size_t i = 0; i < instant_fired_.size(); ++i) {
      if (instant_fired_[i]) continue;
      report_.add("SAN021", Severity::kWarning, model_.name(),
                  model_.instantaneous_activities()[i].name,
                  "instantaneous activity fires in no probed marking (disabled everywhere, or "
                  "always pre-empted by a higher-priority activity)",
                  "check the enabling predicate and the priority ordering");
    }
    if (!markings_.empty()) {
      for (size_t p = 0; p < model_.place_count(); ++p) {
        if (token_min_[p] != token_max_[p]) continue;
        report_.add("SAN022", Severity::kInfo, model_.name(), model_.place_name(san::PlaceRef{p}),
                    str_format("place holds %d token(s) in every probed marking",
                               static_cast<int>(token_min_[p])),
                    "a constant place is often a misspelled reference or a forgotten effect");
      }
    }
    check_vanishing_cycles();
    if (truncated_) {
      report_.add("SAN031", Severity::kWarning, model_.name(), "",
                  str_format("probe budget of %zu markings exhausted; the remaining checks cover "
                             "only the probed prefix of the reachable markings",
                             options_.max_probe_markings),
                  "raise ModelLintOptions::max_probe_markings, or expect partial coverage");
    }
  }

  const SanModel& model_;
  const ModelLintOptions& options_;
  Report& report_;

  std::vector<Marking> markings_;
  std::unordered_map<Marking, size_t, MarkingHash> index_;
  std::deque<size_t> frontier_;
  bool truncated_ = false;

  std::vector<bool> timed_fired_;
  std::vector<bool> instant_fired_;
  std::vector<int32_t> token_min_;
  std::vector<int32_t> token_max_;
  std::set<std::string> reported_;

  std::vector<Marking> vanishing_markings_;
  std::unordered_map<Marking, size_t, MarkingHash> vanishing_index_;
  std::vector<std::vector<size_t>> vanishing_edges_;
};

std::string finding_key(const Finding& finding) { return finding.code + '\0' + finding.location; }

}  // namespace

Report lint_model(const san::SanModel& model, const ModelLintOptions& options) {
  Report report;

  // Structural checks: cheap, unconditional, shared by both passes.
  if (model.place_count() == 0) {
    report.add("SAN001", Severity::kError, model.name(), "",
               "model has no places: there is no marking to evolve",
               "add places before activities; see san/model.hh");
  }
  if (model.timed_activities().empty()) {
    report.add("SAN002", Severity::kError, model.name(), "",
               "model has no timed activities: the chain cannot evolve in time",
               "add at least one timed activity (instantaneous activities fire in zero time)");
  }

  std::optional<ProofResult> proof;
  if (options.prove) {
    ProveOptions prove_options = options.prove_options;
    prove_options.probability_tolerance = options.probability_tolerance;
    proof = prove_model(model, prove_options);
  }
  const bool fully_proved = proof && proof->fully_proved;

  // The probe still runs on a fully proved model when it has budget: the
  // vanishing-cycle check (SAN030) is probe-only, and a complete probe can
  // correct the prover's liveness optimism (its witnesses live in the bound
  // box, which over-approximates reachability).
  Report probe_report;
  if (options.max_probe_markings > 0) {
    Prober(model, options, probe_report).run();
  }
  const bool probe_complete =
      options.max_probe_markings > 0 && !probe_report.has_code("SAN031");

  std::set<std::string> seen;
  for (const Finding& finding : report.findings()) seen.insert(finding_key(finding));
  if (proof) {
    for (const Finding& finding : proof->findings.findings()) {
      // The fully-proved summary belongs to prove_model()'s own report; the
      // composed report says it by staying silent.
      if (finding.code == "SAN045") continue;
      // A complete probe covered every reachable marking, so whatever the
      // prover could not decide has been checked exhaustively anyway.
      if (probe_complete &&
          (finding.code == "SAN040" || finding.code == "SAN043" || finding.code == "SAN044")) {
        continue;
      }
      if (!seen.insert(finding_key(finding)).second) continue;
      report.add(finding);
    }
  }
  for (const Finding& finding : probe_report.findings()) {
    if (finding.code == "SAN031" && fully_proved) continue;
    if (!seen.insert(finding_key(finding)).second) continue;
    report.add(finding);
  }
  if (options.max_probe_markings == 0 && !fully_proved) {
    report.add("SAN031", Severity::kWarning, model.name(), "",
               "probe budget is zero and the prover could not settle every property: some "
               "checks did not run",
               "raise ModelLintOptions::max_probe_markings, or make the model fully provable "
               "(combinator expressions and bounded places)");
  }
  return report;
}

}  // namespace gop::lint
