#include "lint/chain_lint.hh"

#include <cmath>
#include <deque>

#include "san/lint.hh"
#include "util/strings.hh"

namespace gop::lint {

namespace {

/// "3 state(s), e.g. 0, 4, 7" — a bounded example list for per-state codes.
std::string state_examples(const std::vector<size_t>& states, size_t max_examples) {
  std::string out = str_format("%zu state(s), e.g.", states.size());
  for (size_t i = 0; i < states.size() && i < max_examples; ++i) {
    out += (i == 0 ? " " : ", ") + std::to_string(states[i]);
  }
  return out;
}

}  // namespace

Report lint_generator(const linalg::CsrMatrix& rates, const std::vector<double>& exit_rates,
                      const std::vector<double>& initial, const std::string& model_name,
                      const ChainLintOptions& options) {
  Report report;
  const size_t n = rates.rows();

  // CHN003: off-diagonal entries must be non-negative finite rates.
  std::vector<size_t> bad_entry_rows;
  for (size_t s = 0; s < n; ++s) {
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      const double rate = rates.values()[k];
      if (rate < 0.0 || !std::isfinite(rate)) {
        bad_entry_rows.push_back(s);
        break;
      }
    }
  }
  if (!bad_entry_rows.empty()) {
    report.add("CHN003", Severity::kError, model_name, "",
               "negative or non-finite off-diagonal rate in " +
                   state_examples(bad_entry_rows, options.max_examples),
               "transition rates must be non-negative and finite; check the rate expressions "
               "feeding the generator");
  }

  // CHN002: the diagonal must balance the off-diagonal row sums (Q 1 = 0).
  if (exit_rates.size() != n) {
    report.add("CHN002", Severity::kError, model_name, "",
               str_format("exit-rate vector has %zu entries for %zu states", exit_rates.size(), n),
               "the generator diagonal must cover every state");
  } else {
    std::vector<size_t> unbalanced;
    for (size_t s = 0; s < n; ++s) {
      const double row_sum = rates.row_sum(s);
      const double scale = std::max(1.0, std::abs(exit_rates[s]));
      if (!(std::abs(row_sum - exit_rates[s]) <= options.row_sum_tolerance * scale)) {
        unbalanced.push_back(s);
      }
    }
    if (!unbalanced.empty()) {
      report.add("CHN002", Severity::kError, model_name, "",
                 "generator row sums do not match the exit rates in " +
                     state_examples(unbalanced, options.max_examples),
                 "Q must satisfy Q 1 = 0: the diagonal entry is minus the off-diagonal row sum");
    }
  }

  // CHN004: the initial distribution must be a probability vector.
  if (initial.size() != n) {
    report.add("CHN004", Severity::kError, model_name, "",
               str_format("initial distribution has %zu entries for %zu states", initial.size(),
                          n),
               "provide one probability per state");
  } else {
    double total = 0.0;
    bool in_range = true;
    for (double p : initial) {
      if (!(p >= -options.probability_tolerance && p <= 1.0 + options.probability_tolerance)) {
        in_range = false;
      }
      total += p;
    }
    if (!in_range || !(std::abs(total - 1.0) <= 1e-6)) {
      report.add("CHN004", Severity::kError, model_name, "",
                 str_format("initial distribution is not a probability vector (sums to %.12g)",
                            total),
                 "entries must lie in [0,1] and sum to 1");
    }
  }

  // CHN001: every state should be reachable from the initial support.
  if (initial.size() == n && n > 0) {
    std::vector<bool> reachable(n, false);
    std::deque<size_t> frontier;
    for (size_t s = 0; s < n; ++s) {
      if (initial[s] > 0.0) {
        reachable[s] = true;
        frontier.push_back(s);
      }
    }
    while (!frontier.empty()) {
      const size_t s = frontier.front();
      frontier.pop_front();
      for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
        const size_t target = rates.col_idx()[k];
        if (rates.values()[k] > 0.0 && !reachable[target]) {
          reachable[target] = true;
          frontier.push_back(target);
        }
      }
    }
    std::vector<size_t> unreachable;
    for (size_t s = 0; s < n; ++s) {
      if (!reachable[s]) unreachable.push_back(s);
    }
    if (!unreachable.empty()) {
      report.add("CHN001", Severity::kWarning, model_name, "",
                 "unreachable from the initial distribution: " +
                     state_examples(unreachable, options.max_examples),
                 "unreachable states cannot influence any measure; they usually indicate a "
                 "mis-specified initial marking or a lumping artifact");
    }
  }

  return report;
}

Report lint_ctmc(const markov::Ctmc& chain, const std::string& model_name,
                 const ChainLintOptions& options) {
  Report report = lint_generator(chain.rate_matrix(), chain.exit_rates(),
                                 chain.initial_distribution(), model_name, options);

  std::vector<size_t> absorbing;
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.is_absorbing(s)) absorbing.push_back(s);
  }
  if (!absorbing.empty()) {
    report.add("CHN011", Severity::kInfo, model_name, "",
               "absorbing " + state_examples(absorbing, options.max_examples),
               "expected for dependability models; fatal for steady-state analysis (see PRE010)");
  }

  size_t component_count = 0;
  const std::vector<size_t> component =
      san::strongly_connected_components(chain, &component_count);
  if (component_count > 1) {
    report.add("CHN012", Severity::kInfo, model_name, "",
               str_format("chain is not irreducible (%zu strongly connected components over %zu "
                          "states)",
                          component_count, chain.state_count()),
               "steady-state solvers require one communicating class; transient analysis is "
               "unaffected");

    // Bottom components (no exit) are the recurrent classes.
    std::vector<bool> has_exit(component_count, false);
    const linalg::CsrMatrix& rates = chain.rate_matrix();
    for (size_t s = 0; s < chain.state_count(); ++s) {
      for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
        if (component[rates.col_idx()[k]] != component[s]) has_exit[component[s]] = true;
      }
    }
    size_t recurrent = 0;
    for (bool exits : has_exit) {
      if (!exits) ++recurrent;
    }
    if (recurrent > 1) {
      report.add("CHN013", Severity::kInfo, model_name, "",
                 str_format("%zu recurrent classes: the long-run behaviour depends on the "
                            "starting state",
                            recurrent),
                 "check whether the model really has competing absorbing fates; steady-state "
                 "measures are ill-defined across classes");
    }
  }

  return report;
}

Report lint_chain(const san::GeneratedChain& chain, const ChainLintOptions& options) {
  const std::string& model_name = chain.model().name();
  Report report = lint_ctmc(chain.ctmc(), model_name, options);

  // CHN010: the legacy diagnose() dead-activity analysis through findings.
  for (const san::TimedActivity& activity : chain.model().timed_activities()) {
    bool enabled_somewhere = false;
    for (const san::Marking& marking : chain.states()) {
      if (activity.enabled(marking)) {
        enabled_somewhere = true;
        break;
      }
    }
    if (!enabled_somewhere) {
      report.add("CHN010", Severity::kWarning, model_name, activity.name,
                 "timed activity is enabled in no reachable tangible marking",
                 "the activity can never fire; check its guard against the reachable markings");
    }
  }

  return report;
}

Report lint_reward(const san::GeneratedChain& chain, const san::RewardStructure& reward,
                   const ChainLintOptions& options) {
  (void)options;
  Report report;
  const std::string& model_name = chain.model().name();
  const std::string location = reward.name().empty() ? "reward" : reward.name();
  const san::SanModel& model = chain.model();

  if (reward.rate_rewards().empty() && !reward.has_impulses()) {
    report.add("RWD001", Severity::kWarning, model_name, location,
               "reward structure is empty (identically zero)",
               "add predicate-rate pairs or impulse rewards");
    return report;
  }

  for (size_t i = 0; i < reward.rate_rewards().size(); ++i) {
    const san::PredicateRate& pair = reward.rate_rewards()[i];
    bool matched = false;
    bool finite = true;
    std::string defect;
    for (const san::Marking& marking : chain.states()) {
      try {
        if (!pair.predicate(marking)) continue;
        matched = true;
        const double rate = pair.rate(marking);
        if (!std::isfinite(rate)) {
          finite = false;
          defect = str_format("rate evaluates to %g in marking %s", rate,
                              marking.to_string().c_str());
          break;
        }
      } catch (const std::exception& e) {
        finite = false;
        defect = "expression raised an error in marking " + marking.to_string() + ": " + e.what();
        break;
      }
    }
    if (!finite) {
      report.add("RWD002", Severity::kError, model_name, location,
                 str_format("rate-reward pair #%zu: ", i) + defect,
                 "reward rates must be finite over every reachable marking the predicate matches");
    } else if (!matched) {
      report.add("RWD001", Severity::kWarning, model_name, location,
                 str_format("rate-reward pair #%zu matches no reachable marking (it contributes "
                            "nothing)",
                            i),
                 "the predicate never holds on the chain; check it against the reachable "
                 "markings");
    }
  }

  // Impulse rewards: only timed activities produce labelled transitions.
  for (size_t i = 0; i < model.instantaneous_activities().size(); ++i) {
    if (reward.impulse_of(model.instantaneous_ref(i)) != 0.0) {
      report.add("RWD004", Severity::kError, model_name, location,
                 "impulse reward on instantaneous activity '" +
                     model.instantaneous_activities()[i].name + "'",
                 "impulse rewards are supported on timed activities only; the solvers reject "
                 "this structure");
    }
  }
  for (size_t i = 0; i < model.timed_activities().size(); ++i) {
    const san::ActivityRef ref = model.timed_ref(i);
    const double impulse = reward.impulse_of(ref);
    if (impulse == 0.0) continue;
    if (!std::isfinite(impulse)) {
      report.add("RWD002", Severity::kError, model_name, location,
                 "non-finite impulse reward on timed activity '" + model.timed_activities()[i].name +
                     "'",
                 "impulse rewards must be finite");
      continue;
    }
    bool labels_transition = false;
    for (const markov::Transition& tr : chain.ctmc().transitions()) {
      if (tr.label == static_cast<int>(ref.index)) {
        labels_transition = true;
        break;
      }
    }
    if (!labels_transition) {
      report.add("RWD003", Severity::kWarning, model_name, location,
                 "impulse reward on timed activity '" + model.timed_activities()[i].name +
                     "', which completes on no reachable transition",
                 "the activity never fires (see CHN010/SAN020), so the impulse contributes "
                 "nothing");
    }
  }

  return report;
}

}  // namespace gop::lint
