#pragma once

/// \file lint.hh
/// Umbrella header for the gop::lint static-analysis subsystem:
///  - finding.hh     structured findings (code, severity, location, hint)
///  - prove.hh       symbolic model prover (interval abstract interpretation
///                   over the san/expr_ir.hh expression IR)
///  - model_lint.hh  layer 1: pre-generation checks on a san::SanModel
///                   (prover + reachability probe, composed)
///  - chain_lint.hh  layer 2: generated-chain / generator / reward checks
///  - preflight.hh   layer 3: solver preflight for a (chain, grid, options)
///  - admission.hh   the composed battery as one call (gop_lint, gop::serve)
/// The check-code catalog is documented in docs/static-analysis.md; the
/// `gop_lint` CLI (tools/gop_lint.cc) runs the full battery.

#include "lint/admission.hh"    // IWYU pragma: export
#include "lint/chain_lint.hh"   // IWYU pragma: export
#include "lint/finding.hh"      // IWYU pragma: export
#include "lint/model_lint.hh"   // IWYU pragma: export
#include "lint/preflight.hh"    // IWYU pragma: export
#include "lint/prove.hh"        // IWYU pragma: export
