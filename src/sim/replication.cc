#include "sim/replication.hh"

#include <algorithm>
#include <cmath>

#include "obs/obs.hh"
#include "par/parallel_for.hh"
#include "util/error.hh"

namespace gop::sim {

namespace {

bool target_met(const ReplicationOptions& options, const OnlineStats& stats) {
  if (options.target_half_width_abs <= 0.0 && options.target_half_width_rel <= 0.0) {
    return false;
  }
  const double hw = stats.ci_half_width(options.confidence);
  if (options.target_half_width_abs > 0.0 && hw <= options.target_half_width_abs) return true;
  if (options.target_half_width_rel > 0.0 &&
      hw <= options.target_half_width_rel * std::abs(stats.mean())) {
    return true;
  }
  return false;
}

/// Counts one finished run into the registry ("sim.runs", "sim.replications",
/// "sim.batches"; batches = 0 for the serial path).
void record_run(const ReplicationResult& result, size_t batches) {
  if (!obs::enabled()) return;
  obs::counter("sim.runs").add();
  obs::counter("sim.replications").add(result.stats.count());
  obs::counter("sim.batches").add(batches);
}

}  // namespace

ReplicationResult run_replications(const std::function<double(Rng&)>& replication,
                                   const ReplicationOptions& options) {
  GOP_OBS_SPAN("sim.run_replications");
  GOP_REQUIRE(static_cast<bool>(replication), "replication functional must be callable");
  GOP_REQUIRE(options.min_replications >= 2, "need at least two replications");
  GOP_REQUIRE(options.max_replications >= options.min_replications,
              "max_replications must be >= min_replications");

  const size_t threads =
      options.threads > 0 ? options.threads : par::default_thread_count();

  Rng master(options.seed);
  ReplicationResult result;

  if (threads <= 1) {
    // Serial path: unchanged historical behaviour (target checked after every
    // replication once the minimum is reached).
    for (size_t i = 0; i < options.max_replications; ++i) {
      Rng stream = master.fork();
      result.stats.add(replication(stream));
      if (result.stats.count() >= options.min_replications && target_met(options, result.stats)) {
        result.target_met = true;
        break;
      }
    }
    if (!result.target_met) result.target_met = target_met(options, result.stats);
    record_run(result, 0);
    return result;
  }

  // Concurrent batched mode. Each batch pre-forks one seed per replication by
  // index — seed i is the i-th draw from the master stream, exactly what the
  // serial path's master.fork() would have produced — runs the batch across
  // the pool, then folds the values into the accumulator in replication order
  // (deterministic ordered reduction). The CI target is evaluated at batch
  // boundaries only.
  const size_t batch_size = options.batch_size > 0 ? options.batch_size : 256;
  par::ThreadPool pool(threads);
  std::vector<uint64_t> seeds;
  std::vector<double> values;

  size_t launched = 0;
  size_t batches = 0;
  while (launched < options.max_replications) {
    const size_t batch = std::min(batch_size, options.max_replications - launched);
    seeds.resize(batch);
    for (uint64_t& seed : seeds) seed = master.next_u64();
    values.resize(batch);
    // Chunk so each task amortizes queue traffic even for cheap replications;
    // chunking affects scheduling only, never where a value lands.
    const size_t chunk = std::max<size_t>(1, batch / (8 * threads));
    par::parallel_for(pool, batch, chunk, [&replication, &seeds, &values](size_t j) {
      Rng stream(seeds[j]);
      values[j] = replication(stream);
    });
    for (double value : values) result.stats.add(value);
    launched += batch;
    ++batches;
    if (result.stats.count() >= options.min_replications && target_met(options, result.stats)) {
      result.target_met = true;
      break;
    }
  }
  if (!result.target_met) result.target_met = target_met(options, result.stats);
  record_run(result, batches);
  return result;
}

}  // namespace gop::sim
