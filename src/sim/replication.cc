#include "sim/replication.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::sim {

ReplicationResult run_replications(const std::function<double(Rng&)>& replication,
                                   const ReplicationOptions& options) {
  GOP_REQUIRE(static_cast<bool>(replication), "replication functional must be callable");
  GOP_REQUIRE(options.min_replications >= 2, "need at least two replications");
  GOP_REQUIRE(options.max_replications >= options.min_replications,
              "max_replications must be >= min_replications");

  Rng master(options.seed);
  ReplicationResult result;

  auto target_met = [&]() {
    if (options.target_half_width_abs <= 0.0 && options.target_half_width_rel <= 0.0) {
      return false;
    }
    const double hw = result.stats.ci_half_width(options.confidence);
    if (options.target_half_width_abs > 0.0 && hw <= options.target_half_width_abs) return true;
    if (options.target_half_width_rel > 0.0 &&
        hw <= options.target_half_width_rel * std::abs(result.stats.mean())) {
      return true;
    }
    return false;
  };

  for (size_t i = 0; i < options.max_replications; ++i) {
    Rng stream = master.fork();
    result.stats.add(replication(stream));
    if (result.stats.count() >= options.min_replications && target_met()) {
      result.target_met = true;
      break;
    }
  }
  if (!result.target_met) result.target_met = target_met();
  return result;
}

}  // namespace gop::sim
