#pragma once

/// \file rng.hh
/// xoshiro256** pseudo-random generator (Blackman & Vigna) with SplitMix64
/// seeding, plus the sampling primitives the discrete-event simulators need.
/// Deterministic given a seed, cheap to fork into independent streams.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gop::sim {

class Rng {
 public:
  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential variate with the given rate (mean 1/rate). rate > 0.
  double exponential(double rate);

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Index sampled from unnormalized non-negative weights; at least one
  /// weight must be positive.
  size_t categorical(const std::vector<double>& weights);

  /// Uniform integer in [0, n).
  uint64_t uniform_index(uint64_t n);

  /// A generator seeded independently from this one's stream; use it to give
  /// each replication its own stream.
  Rng fork();

 private:
  uint64_t state_[4];
};

}  // namespace gop::sim
