#pragma once

/// \file event_queue.hh
/// Binary-heap future-event list for discrete-event simulation. Header-only:
/// a thin, typed wrapper over std::priority_queue with stable tie-breaking by
/// insertion order so simulations are reproducible across platforms.

#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.hh"

namespace gop::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time;
    uint64_t sequence;  // insertion order, breaks time ties deterministically
    Payload payload;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  void schedule(double time, Payload payload) {
    GOP_REQUIRE(time >= 0.0, "event time must be non-negative");
    heap_.push(Event{time, next_sequence_++, std::move(payload)});
  }

  /// Time of the earliest event; queue must be non-empty.
  double next_time() const {
    GOP_REQUIRE(!heap_.empty(), "next_time on an empty event queue");
    return heap_.top().time;
  }

  /// Removes and returns the earliest event.
  Event pop() {
    GOP_REQUIRE(!heap_.empty(), "pop on an empty event queue");
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  void clear() {
    heap_ = {};
    next_sequence_ = 0;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_sequence_ = 0;
};

}  // namespace gop::sim
