#pragma once

/// \file stats.hh
/// Online statistics (Welford) and normal-approximation confidence intervals
/// for Monte Carlo estimators.

#include <cstddef>

namespace gop::sim {

/// Numerically stable running mean/variance accumulator.
class OnlineStats {
 public:
  void add(double value);

  size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Standard error of the mean.
  double std_error() const;

  /// Half-width of the (normal-approximation) confidence interval at the
  /// given confidence level (default 95%).
  double ci_half_width(double confidence = 0.95) const;

  /// Merges another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided standard-normal quantile z with P(|Z| <= z) = confidence.
/// Uses the Acklam rational approximation of the inverse normal CDF.
double normal_two_sided_quantile(double confidence);

}  // namespace gop::sim
