#pragma once

/// \file replication.hh
/// Replication runner for Monte Carlo experiments: runs a per-replication
/// functional with an independent RNG stream each time, either for a fixed
/// replication count or until a target confidence-interval half-width is met.

#include <functional>

#include "sim/rng.hh"
#include "sim/stats.hh"

namespace gop::sim {

struct ReplicationOptions {
  uint64_t seed = 42;
  /// Minimum / maximum number of replications.
  size_t min_replications = 100;
  size_t max_replications = 100'000;
  /// Stop early once the 95% CI half-width falls below
  /// `target_half_width_abs` or below `target_half_width_rel * |mean|`.
  /// Set to 0 to disable the corresponding criterion.
  double target_half_width_abs = 0.0;
  double target_half_width_rel = 0.0;
  double confidence = 0.95;
  /// Worker threads. 1 (the default) is the historical serial loop, bit for
  /// bit; 0 picks gop::par::default_thread_count() (GOP_THREADS env var, else
  /// the hardware). The concurrent mode draws per-replication RNG streams by
  /// index from the same master stream the serial path forks from and merges
  /// sample values in replication order, so for a fixed seed and a fixed
  /// replication count the estimate is identical at every thread count. The
  /// replication functional must be safe to invoke concurrently.
  size_t threads = 1;
  /// Replications per scheduling batch in the concurrent mode. The CI target
  /// is checked at batch boundaries only, so a concurrent run with an active
  /// target can stop up to one batch later than the serial loop (never with
  /// a different estimate for the replications it did run — the batch size,
  /// not the worker count, decides the stopping points). 0 picks 256.
  size_t batch_size = 0;
};

struct ReplicationResult {
  OnlineStats stats;
  bool target_met = false;

  double mean() const { return stats.mean(); }
  double half_width(double confidence = 0.95) const { return stats.ci_half_width(confidence); }
  size_t replications() const { return stats.count(); }
};

/// Runs `replication(rng)` repeatedly, each call with a freshly forked RNG.
ReplicationResult run_replications(const std::function<double(Rng&)>& replication,
                                   const ReplicationOptions& options = {});

}  // namespace gop::sim
