#include "sim/rng.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::sim {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 makes it practically
  // impossible, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GOP_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double rate) {
  GOP_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // -log(1 - U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GOP_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  GOP_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  double u = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: u consumed by roundoff
}

uint64_t Rng::uniform_index(uint64_t n) {
  GOP_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  while (true) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace gop::sim
