#pragma once

/// \file thread_pool.hh
/// Fixed-size worker pool with a blocking FIFO task queue — the execution
/// backend of gop::par. The pool is a plain reusable object: create it once,
/// drive any number of parallel_for calls through it, destroy it when done
/// (the destructor drains the queue and joins the workers). Nothing in here
/// depends on the rest of the library beyond gop_util's error helpers, so
/// every layer (core sweeps, sim replications, benches) can link it without
/// cycles.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gop::par {

/// Worker count used when a caller asks for "auto" (threads = 0): the
/// GOP_THREADS environment variable when it parses as a positive integer,
/// else std::thread::hardware_concurrency() (1 when that reports 0).
size_t default_thread_count();

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (0 means default_thread_count()).
  explicit ThreadPool(size_t thread_count = 0);

  /// Drains already-submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Workers pick tasks up in submission (FIFO) order; with
  /// a single worker this is also the execution order. Tasks must not throw —
  /// wrap fallible work (parallel_for captures exceptions per chunk).
  ///
  /// Observability: when gop::obs is enabled, submissions count into
  /// "par.tasks_submitted" and the queue-depth high-water mark into
  /// "par.queue_depth_max"; each worker counts executed tasks into
  /// "par.tasks_executed" and its own "par.worker.<i>.tasks". Disabled obs
  /// costs one relaxed load per submit/execute.
  void submit(std::function<void()> task);

 private:
  void worker_loop(size_t worker_index);

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gop::par
