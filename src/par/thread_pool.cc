#include "par/thread_pool.hh"

#include <cstdlib>

#include "obs/registry.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::par {

size_t default_thread_count() {
  if (const char* env = std::getenv("GOP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = default_thread_count();
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GOP_REQUIRE(static_cast<bool>(task), "ThreadPool::submit needs a callable task");
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GOP_REQUIRE(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  ready_.notify_one();
  if (obs::enabled()) {
    static obs::Counter& submitted = obs::counter("par.tasks_submitted");
    static obs::MaxGauge& depth_max = obs::max_gauge("par.queue_depth_max");
    submitted.add();
    depth_max.record(depth);
  }
}

void ThreadPool::worker_loop(size_t worker_index) {
  obs::Counter* worker_tasks = nullptr;  // resolved lazily, only when tracing
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    if (obs::enabled()) {
      static obs::Counter& executed = obs::counter("par.tasks_executed");
      executed.add();
      if (worker_tasks == nullptr) {
        worker_tasks = &obs::counter(str_format("par.worker.%zu.tasks", worker_index));
      }
      worker_tasks->add();
    }
  }
}

}  // namespace gop::par
