#include "par/thread_pool.hh"

#include <cstdlib>

#include "util/error.hh"

namespace gop::par {

size_t default_thread_count() {
  if (const char* env = std::getenv("GOP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = default_thread_count();
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GOP_REQUIRE(static_cast<bool>(task), "ThreadPool::submit needs a callable task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GOP_REQUIRE(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace gop::par
