#pragma once

/// \file parallel_for.hh
/// Data-parallel primitives over a ThreadPool, built around one determinism
/// contract: *results land in index order regardless of completion order*.
/// parallel_for partitions [0, n) into chunks of consecutive indices;
/// ordered_transform writes fn(i) into slot i of a pre-sized vector, so a
/// reduction over that vector visits replicas in exactly the order the serial
/// loop would — parallel runs are bit-identical to serial ones as long as
/// fn(i) itself is deterministic. Exceptions thrown by fn are captured per
/// chunk and the lowest-index chunk's exception is rethrown after every task
/// has finished (no task is left running against destroyed state).

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "par/thread_pool.hh"

namespace gop::par {

namespace detail {

/// Completion latch plus per-chunk exception slots for one parallel_for.
struct ForJoinState {
  std::mutex mutex;
  std::condition_variable done;
  size_t pending = 0;
  std::vector<std::exception_ptr> errors;
};

}  // namespace detail

/// Runs fn(i) for every i in [0, n), `chunk` consecutive indices per task.
/// Serial fallback (runs inline on the caller's thread, no queueing) when the
/// pool has a single worker or a single chunk covers the whole range — with
/// threads = 1 the behaviour is the plain for-loop, bit for bit.
template <typename Fn>
void parallel_for(ThreadPool& pool, size_t n, size_t chunk, Fn&& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (pool.thread_count() <= 1 || n <= chunk) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const size_t chunks = (n + chunk - 1) / chunk;
  detail::ForJoinState state;
  state.pending = chunks;
  state.errors.assign(chunks, nullptr);

  for (size_t c = 0; c < chunks; ++c) {
    pool.submit([&state, &fn, c, chunk, n] {
      std::exception_ptr error;
      try {
        const size_t lo = c * chunk;
        const size_t hi = std::min(n, lo + chunk);
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (error) state.errors[c] = std::move(error);
      if (--state.pending == 0) state.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
  for (std::exception_ptr& error : state.errors) {
    if (error) std::rethrow_exception(error);  // lowest-index chunk wins
  }
}

/// Convenience overload owning a transient pool: threads = 0 means
/// default_thread_count(); threads <= 1 never constructs a pool at all.
template <typename Fn>
void parallel_for(size_t n, size_t chunk, Fn&& fn, size_t threads = 0) {
  if (threads == 0) threads = default_thread_count();
  if (threads <= 1 || n <= std::max<size_t>(chunk, 1)) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  parallel_for(pool, n, chunk, std::forward<Fn>(fn));
}

/// Deterministic ordered reduction helper: out[i] = fn(i) for i in [0, n),
/// with slot placement fixed by index — never by completion order. R must be
/// default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> ordered_transform(ThreadPool& pool, size_t n, size_t chunk, Fn&& fn) {
  std::vector<R> out(n);
  parallel_for(pool, n, chunk, [&out, &fn](size_t i) { out[i] = fn(i); });
  return out;
}

/// Pool-less ordered reduction (threads = 0 means default_thread_count()).
template <typename R, typename Fn>
std::vector<R> ordered_transform(size_t n, size_t chunk, Fn&& fn, size_t threads = 0) {
  std::vector<R> out(n);
  parallel_for(
      n, chunk, [&out, &fn](size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace gop::par
