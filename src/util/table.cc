#include "util/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GOP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

TextTable& TextTable::begin_row() {
  if (!rows_.empty()) {
    GOP_REQUIRE(rows_.back().size() == headers_.size(),
                "previous row is incomplete; fill all columns before begin_row()");
  }
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  GOP_REQUIRE(!rows_.empty(), "call begin_row() before add()");
  GOP_REQUIRE(rows_.back().size() < headers_.size(), "row already has all columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add_double(double v, int precision) {
  return add(format_compact(v, precision));
}

TextTable& TextTable::add_int(long long v) { return add(str_format("%lld", v)); }

std::string TextTable::to_string(int indent) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const std::string pad(static_cast<size_t>(indent), ' ');
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 != headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << pad;
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 != headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string() << '\n'; }

}  // namespace gop
