#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop {

CliFlags::CliFlags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliFlags& CliFlags::add_double(const std::string& name, double def, const std::string& help) {
  const std::string text = format_compact(def, 12);
  flags_[name] = Flag{Kind::kDouble, text, text, help};
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_int(const std::string& name, long long def, const std::string& help) {
  const std::string text = str_format("%lld", def);
  flags_[name] = Flag{Kind::kInt, text, text, help};
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_string(const std::string& name, const std::string& def,
                               const std::string& help) {
  flags_[name] = Flag{Kind::kString, def, def, help};
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_bool(const std::string& name, bool def, const std::string& help) {
  const std::string text = def ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, text, text, help};
  order_.push_back(name);
  return *this;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    GOP_REQUIRE(starts_with(arg, "--"), "unexpected positional argument: " + arg);
    arg.erase(0, 2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    GOP_REQUIRE(it != flags_.end(), "unknown flag --" + name + " (try --help)");
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        GOP_REQUIRE(i + 1 < argc, "flag --" + name + " requires a value");
        value = argv[++i];
      }
    }
    // Validate by kind.
    switch (flag.kind) {
      case Kind::kDouble: {
        char* end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        GOP_REQUIRE(end && *end == '\0' && !value.empty(),
                    "flag --" + name + " expects a number, got '" + value + "'");
        break;
      }
      case Kind::kInt: {
        char* end = nullptr;
        (void)std::strtoll(value.c_str(), &end, 10);
        GOP_REQUIRE(end && *end == '\0' && !value.empty(),
                    "flag --" + name + " expects an integer, got '" + value + "'");
        break;
      }
      case Kind::kBool:
        GOP_REQUIRE(value == "true" || value == "false",
                    "flag --" + name + " expects true/false, got '" + value + "'");
        break;
      case Kind::kString:
        break;
    }
    flag.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  GOP_REQUIRE(it != flags_.end(), "flag --" + name + " was never registered");
  GOP_REQUIRE(it->second.kind == kind, "flag --" + name + " accessed with the wrong type");
  return it->second;
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

long long CliFlags::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.def << ")\n      " << f.help << '\n';
  }
  return os.str();
}

}  // namespace gop
