#pragma once

/// \file error.hh
/// Contract-checking macros and exception types used across the library.
///
/// Conventions (following the C++ Core Guidelines I.5/I.6/E.x):
///  - GOP_REQUIRE  — precondition on caller-supplied arguments; throws
///                   gop::InvalidArgument.
///  - GOP_ENSURE   — internal invariant / postcondition; throws
///                   gop::InternalError (a bug in this library, not the caller).
///  - GOP_CHECK_NUMERIC — numerical-quality condition (convergence, tolerance);
///                   throws gop::NumericalError.

#include <stdexcept>
#include <string>
#include <vector>

namespace gop {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical procedure fails to meet its accuracy contract
/// (non-convergence, singular system, overflow of a stable recurrence, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the recovery dispatchers (markov/recovery.hh) when a solve
/// failed *after* exhausting its whole recovery ladder — tightened-tolerance
/// retries, then engine fallbacks. Unlike a bare NumericalError it is
/// structured: it records which solver gave up and every attempt made, so a
/// caller (or a fault-injection campaign) can audit the degradation path
/// instead of parsing a message.
class SolverError : public NumericalError {
 public:
  SolverError(std::string solver, std::vector<std::string> attempts, std::string cause);

  /// The solver family that gave up: "transient", "accumulated",
  /// "steady_state", "transient_session", "accumulated_session".
  const std::string& solver() const { return solver_; }
  /// One entry per failed attempt, "engine: reason" (ladder order).
  const std::vector<std::string>& attempts() const { return attempts_; }
  /// The failure reason of the last attempt.
  const std::string& cause() const { return cause_; }

 private:
  std::string solver_;
  std::vector<std::string> attempts_;
  std::string cause_;
};

/// Thrown when a model is structurally unusable for the requested analysis
/// (vanishing-marking loop, absorbing chain passed to a steady-state solver
/// that requires irreducibility, ...).
class ModelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* cond, const char* file, int line,
                                         const std::string& msg);
[[noreturn]] void throw_internal_error(const char* cond, const char* file, int line,
                                       const std::string& msg);
[[noreturn]] void throw_numerical_error(const char* cond, const char* file, int line,
                                        const std::string& msg);
}  // namespace detail

}  // namespace gop

#define GOP_REQUIRE(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::gop::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                           \
  } while (false)

#define GOP_ENSURE(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::gop::detail::throw_internal_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)

#define GOP_CHECK_NUMERIC(cond, msg)                                          \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::gop::detail::throw_numerical_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)
