#pragma once

/// \file strings.hh
/// Small string/format helpers (libstdc++ 12 has no std::format yet).

#include <string>
#include <vector>

namespace gop {

/// printf-style formatting into a std::string.
/// Example: str_format("phi=%.0f Y=%.4f", phi, y)
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with `precision` significant digits, trimming trailing
/// zeros ("1.5", "0.0001", "12000").
std::string format_compact(double value, int precision = 6);

/// Joins elements with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace gop
