#include "util/error.hh"

#include <sstream>

namespace gop {

namespace {
std::string solver_error_message(const std::string& solver,
                                 const std::vector<std::string>& attempts,
                                 const std::string& cause) {
  std::ostringstream os;
  os << "solver error: " << solver << " failed after " << attempts.size() << " attempt"
     << (attempts.size() == 1 ? "" : "s");
  if (!attempts.empty()) {
    os << " [";
    for (size_t i = 0; i < attempts.size(); ++i) {
      if (i > 0) os << "; ";
      os << attempts[i];
    }
    os << ']';
  }
  os << ": " << cause;
  return os.str();
}
}  // namespace

SolverError::SolverError(std::string solver, std::vector<std::string> attempts, std::string cause)
    : NumericalError(solver_error_message(solver, attempts, cause)),
      solver_(std::move(solver)),
      attempts_(std::move(attempts)),
      cause_(std::move(cause)) {}

}  // namespace gop

namespace gop::detail {

namespace {
std::string compose(const char* kind, const char* cond, const char* file, int line,
                    const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [condition `" << cond << "` failed at " << file << ':' << line
     << ']';
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* cond, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(compose("invalid argument", cond, file, line, msg));
}

void throw_internal_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw InternalError(compose("internal error", cond, file, line, msg));
}

void throw_numerical_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw NumericalError(compose("numerical error", cond, file, line, msg));
}

}  // namespace gop::detail
