#include "util/error.hh"

#include <sstream>

namespace gop::detail {

namespace {
std::string compose(const char* kind, const char* cond, const char* file, int line,
                    const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [condition `" << cond << "` failed at " << file << ':' << line
     << ']';
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* cond, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(compose("invalid argument", cond, file, line, msg));
}

void throw_internal_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw InternalError(compose("internal error", cond, file, line, msg));
}

void throw_numerical_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw NumericalError(compose("numerical error", cond, file, line, msg));
}

}  // namespace gop::detail
