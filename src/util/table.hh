#pragma once

/// \file table.hh
/// Console table and CSV rendering used by the benchmark harness and the
/// examples to print paper-style tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace gop {

/// An append-only table of strings with aligned console rendering and CSV
/// export. Cells are stored as text; use the typed add_* helpers to format
/// numbers consistently.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_* calls fill it left to right.
  TextTable& begin_row();

  TextTable& add(std::string cell);
  TextTable& add_double(double v, int precision = 6);
  TextTable& add_int(long long v);

  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return headers_.size(); }

  /// Renders with padded columns, a header separator and `indent` leading
  /// spaces per line.
  std::string to_string(int indent = 0) const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline quoted).
  std::string to_csv() const;

  /// Convenience: prints to_string() to `os` followed by a newline.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gop
