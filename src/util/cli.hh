#pragma once

/// \file cli.hh
/// Minimal command-line flag parser for the examples and benchmark binaries.
///
/// Supported syntax: `--name=value`, `--name value`, and bare `--name` for
/// boolean flags. `--help` prints registered flags and exits.

#include <map>
#include <string>
#include <vector>

namespace gop {

class CliFlags {
 public:
  /// `description` appears at the top of --help output.
  CliFlags(std::string program, std::string description);

  /// Registers a flag with a default value; returns *this for chaining.
  CliFlags& add_double(const std::string& name, double def, const std::string& help);
  CliFlags& add_int(const std::string& name, long long def, const std::string& help);
  CliFlags& add_string(const std::string& name, const std::string& def, const std::string& help);
  CliFlags& add_bool(const std::string& name, bool def, const std::string& help);

  /// Parses argv. Throws gop::InvalidArgument on unknown flags or malformed
  /// values. If --help is present, prints usage to stdout and returns false
  /// (callers should exit 0).
  bool parse(int argc, const char* const* argv);

  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kDouble, kInt, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // textual representation
    std::string def;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace gop
