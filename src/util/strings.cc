#include "util/strings.hh"

#include <cstdarg>
#include <cstdio>

#include "util/error.hh"

namespace gop {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  GOP_ENSURE(needed >= 0, "vsnprintf failed");
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string format_compact(double value, int precision) {
  std::string s = str_format("%.*g", precision, value);
  return s;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace gop
