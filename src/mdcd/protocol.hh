#pragma once

/// \file protocol.hh
/// An executable, event-level model of the MDCD (message-driven
/// confidence-driven) protocol of the paper's §2 — the system the SAN reward
/// models abstract. Three processes (P1new, P1old, P2) exchange messages at
/// rate lambda; the protocol decides, message by message, when to establish
/// checkpoints and when to run acceptance tests, exactly per the MDCD rules:
///
///  - a process state is *considered potentially contaminated* ("dirty")
///    when it reflects a not-yet-validated message from a dirty sender;
///    P1new is dirty by definition during guarded operation;
///  - a process establishes a checkpoint iff an incoming message would make
///    its otherwise-clean state dirty;
///  - external messages are validated by an acceptance test (coverage c)
///    iff the sender is dirty; a passed AT re-establishes confidence
///    (clears the dirty bits of P1old/P2); a detected error triggers
///    rollback recovery (P1old takes over, normal mode); a missed error or
///    an unvalidated erroneous external message is a system failure;
///  - P1old's outbound messages are suppressed during guarded operation;
///  - after recovery or successful G-OP completion the system runs in the
///    normal mode with no safeguards.
///
/// The simulator reports per-process busy fractions (the empirical
/// counterparts of RMGp's 1-rho1/1-rho2), safeguard-activity counts, and
/// the mission verdict — so the SAN reconstructions can be validated against
/// the protocol itself (bench_mdcd_vs_models).

#include <cstdint>
#include <functional>

#include "core/params.hh"
#include "sim/rng.hh"

namespace gop::mdcd {

enum class ProcessId : uint8_t { kP1New = 0, kP1Old = 1, kP2 = 2 };

struct RunStats {
  /// An erroneous external message was caught by an AT (error recovery ran).
  bool detected = false;
  /// The system failed: an erroneous external message escaped — either
  /// before any detection (missed/absent AT) or after recovery.
  bool failed = false;
  double detection_time = 0.0;  ///< valid when detected
  double failure_time = 0.0;    ///< valid when failed

  /// The four RMGd verdict classes at the horizon: A'1 (no verdict), A'3
  /// (detected, alive), {detected, failed}, A'4 (failed undetected).
  bool in_a1() const { return !detected && !failed; }
  bool in_a3() const { return detected && !failed; }
  bool in_a4() const { return !detected && failed; }

  /// Busy time (AT + checkpoint work) per process over the guarded-operation
  /// interval [0, min(first verdict, horizon)], and that interval's length.
  double busy_time[3] = {0.0, 0.0, 0.0};
  double observed_time = 0.0;

  size_t at_count = 0;
  size_t checkpoint_count = 0;
  size_t messages_sent = 0;

  /// Empirical forward-progress fraction of a process (1 - busy share).
  double rho(ProcessId process) const {
    if (observed_time <= 0.0) return 1.0;
    return 1.0 - busy_time[static_cast<size_t>(process)] / observed_time;
  }
};

/// Protocol-event kinds surfaced to the trace observer.
enum class TraceEvent : uint8_t {
  kSend,             ///< a mission process emitted a message
  kAtStart,          ///< acceptance test begins on an external message
  kAtPass,           ///< AT passed; confidence re-established
  kCheckpointStart,  ///< checkpoint establishment begins
  kCheckpointDone,   ///< checkpoint established; process now dirty
  kFault,            ///< a fault manifested (process contaminated)
  kDetection,        ///< AT caught an erroneous message; recovery runs
  kFailure,          ///< an erroneous external message escaped
};

const char* trace_event_name(TraceEvent event);

/// Observer for protocol traces (may be null). Called in event order.
using TraceObserver = std::function<void(double time, TraceEvent event, ProcessId process)>;

struct ProtocolOptions {
  /// Simulate guarded operation over [0, horizon] (the paper's phi).
  double horizon = 10000.0;
  /// Continue after a detection in the normal mode until `horizon`
  /// (matching RMGd's X'), or stop at the verdict.
  bool continue_after_recovery = true;
  /// Optional event trace (timeline debugging, demos).
  TraceObserver trace;
};

/// Runs one guarded-operation interval under the protocol. Deterministic
/// given the RNG state.
RunStats run_guarded_operation(const core::GsuParameters& params, sim::Rng& rng,
                               const ProtocolOptions& options = {});

}  // namespace gop::mdcd
