#include "mdcd/protocol.hh"

#include <algorithm>

#include "sim/event_queue.hh"
#include "util/error.hh"

namespace gop::mdcd {

const char* trace_event_name(TraceEvent event) {
  switch (event) {
    case TraceEvent::kSend:
      return "send";
    case TraceEvent::kAtStart:
      return "AT-start";
    case TraceEvent::kAtPass:
      return "AT-pass";
    case TraceEvent::kCheckpointStart:
      return "ckpt-start";
    case TraceEvent::kCheckpointDone:
      return "ckpt-done";
    case TraceEvent::kFault:
      return "fault";
    case TraceEvent::kDetection:
      return "DETECTION";
    case TraceEvent::kFailure:
      return "FAILURE";
  }
  return "?";
}

namespace {

constexpr size_t kProcessCount = 3;

size_t index_of(ProcessId p) { return static_cast<size_t>(p); }

enum class EventKind : uint8_t { kSend, kFault, kWorkDone };

struct Event {
  EventKind kind;
  size_t process;
  uint64_t sequence;  // validity stamp against Process::*_seq
};

enum class Work : uint8_t { kNone, kAcceptanceTest, kCheckpoint };

struct Process {
  bool in_mission = false;  // sends messages that matter (P1old's outbound is
                            // suppressed during G-OP, so it is out of mission)
  bool contaminated = false;
  bool dirty = false;          // considered potentially contaminated
  bool always_dirty = false;   // P1new during G-OP
  bool needs_checkpoint = false;

  Work work = Work::kNone;
  bool pending_message_erroneous = false;  // the message under AT
  double work_started = 0.0;

  uint64_t send_seq = 0;
  uint64_t work_seq = 0;

  bool considered_dirty() const { return dirty || always_dirty; }
  bool free_for_send() const { return work == Work::kNone && !needs_checkpoint; }
};

class Simulation {
 public:
  Simulation(const core::GsuParameters& params, sim::Rng& rng, const ProtocolOptions& options)
      : params_(params), rng_(rng), options_(options) {
    params_.validate();
    GOP_REQUIRE(options_.horizon > 0.0, "horizon must be positive");
  }

  RunStats run() {
    setup_guarded_operation();

    while (!queue_.empty() && !finished_) {
      const auto event = queue_.pop();
      now_ = event.time;
      if (now_ > options_.horizon) break;
      dispatch(event.payload);
    }

    const double first_verdict =
        stats_.detected ? stats_.detection_time
                        : (stats_.failed ? stats_.failure_time : options_.horizon);
    stats_.observed_time = std::min(first_verdict, options_.horizon);
    // Truncate work still in progress at the observation boundary.
    for (size_t p = 0; p < kProcessCount; ++p) {
      if (processes_[p].work != Work::kNone) {
        stats_.busy_time[p] += std::max(0.0, stats_.observed_time - processes_[p].work_started);
      }
    }
    return stats_;
  }

 private:
  void setup_guarded_operation() {
    Process& p1n = processes_[index_of(ProcessId::kP1New)];
    Process& p1o = processes_[index_of(ProcessId::kP1Old)];
    Process& p2 = processes_[index_of(ProcessId::kP2)];
    p1n.in_mission = true;
    p1n.always_dirty = true;
    p1o.in_mission = false;
    p2.in_mission = true;

    schedule_send(index_of(ProcessId::kP1New));
    schedule_send(index_of(ProcessId::kP2));
    // Fault manifestations: the upgraded component and P2. (P1old's shadow
    // contamination is unobservable pre-recovery — recovery restores a clean
    // state — so its fault clock starts at recovery; see DESIGN.md.)
    schedule_fault(index_of(ProcessId::kP1New), params_.mu_new);
    schedule_fault(index_of(ProcessId::kP2), params_.mu_old);
  }

  void dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::kSend:
        handle_send(event);
        return;
      case EventKind::kFault:
        handle_fault(event);
        return;
      case EventKind::kWorkDone:
        handle_work_done(event);
        return;
    }
  }

  void trace(TraceEvent event, size_t p) {
    if (options_.trace) options_.trace(now_, event, static_cast<ProcessId>(p));
  }

  void schedule_send(size_t p) {
    queue_.schedule(now_ + rng_.exponential(params_.lambda),
                    Event{EventKind::kSend, p, ++processes_[p].send_seq});
  }

  void schedule_fault(size_t p, double rate) {
    queue_.schedule(now_ + rng_.exponential(rate), Event{EventKind::kFault, p, 0});
  }

  void begin_work(size_t p, Work work, double completion_rate, bool message_erroneous = false) {
    Process& process = processes_[p];
    process.work = work;
    process.work_started = now_;
    process.pending_message_erroneous = message_erroneous;
    queue_.schedule(now_ + rng_.exponential(completion_rate),
                    Event{EventKind::kWorkDone, p, ++process.work_seq});
  }

  void finish_work(size_t p) {
    Process& process = processes_[p];
    stats_.busy_time[p] += now_ - process.work_started;
    process.work = Work::kNone;
    // Deferred checkpoint, then a fresh send clock once really free.
    if (process.needs_checkpoint && safeguards_on_) {
      process.needs_checkpoint = false;
      ++stats_.checkpoint_count;
      trace(TraceEvent::kCheckpointStart, p);
      begin_work(p, Work::kCheckpoint, params_.beta);
      return;
    }
    process.needs_checkpoint = false;
    schedule_send(p);
  }

  void handle_send(const Event& event) {
    Process& sender = processes_[event.process];
    if (event.sequence != sender.send_seq) return;  // stale clock
    if (!sender.free_for_send()) return;            // superseded by work

    // P1old generates messages during G-OP too, but they are suppressed and
    // cost nothing; only mission processes' sends are modelled.
    if (!sender.in_mission) {
      schedule_send(event.process);
      return;
    }
    ++stats_.messages_sent;
    trace(TraceEvent::kSend, event.process);
    const bool erroneous = sender.contaminated;

    if (rng_.bernoulli(params_.p_ext)) {
      send_external(event.process, erroneous);
    } else {
      send_internal(event.process, erroneous);
    }
    if (!finished_ && processes_[event.process].free_for_send()) {
      schedule_send(event.process);
    }
  }

  void send_external(size_t p, bool erroneous) {
    Process& sender = processes_[p];
    if (safeguards_on_ && sender.considered_dirty()) {
      ++stats_.at_count;
      trace(TraceEvent::kAtStart, p);
      begin_work(p, Work::kAcceptanceTest, params_.alpha, erroneous);
      return;
    }
    // No validation: an erroneous external message fails the system.
    if (erroneous) fail(p);
  }

  void send_internal(size_t p, bool erroneous) {
    // Delivery targets mirror the interaction structure of §2: the shadow
    // pair receives P2's messages; P1new's (or P1old's, post-recovery)
    // reach P2.
    if (p == index_of(ProcessId::kP2)) {
      deliver(p, index_of(ProcessId::kP1New), erroneous);
      deliver(p, index_of(ProcessId::kP1Old), erroneous);
    } else {
      deliver(p, index_of(ProcessId::kP2), erroneous);
    }
  }

  void deliver(size_t from, size_t to, bool erroneous) {
    Process& sender = processes_[from];
    Process& receiver = processes_[to];
    if (erroneous) receiver.contaminated = true;

    // MDCD checkpoint rule: receiving a message from a considered-dirty
    // sender makes an otherwise-clean receiver dirty — checkpoint first.
    if (safeguards_on_ && sender.considered_dirty() && !receiver.considered_dirty()) {
      if (receiver.work == Work::kNone) {
        ++stats_.checkpoint_count;
        trace(TraceEvent::kCheckpointStart, to);
        begin_work(to, Work::kCheckpoint, params_.beta);
      } else {
        receiver.needs_checkpoint = true;
      }
    }
  }

  void handle_fault(const Event& event) {
    Process& process = processes_[event.process];
    if (finished_) return;
    process.contaminated = true;
    trace(TraceEvent::kFault, event.process);
  }

  void handle_work_done(const Event& event) {
    Process& process = processes_[event.process];
    if (event.sequence != process.work_seq || process.work == Work::kNone) return;

    if (process.work == Work::kCheckpoint) {
      process.dirty = true;  // the checkpointed state now reflects dirty input
      trace(TraceEvent::kCheckpointDone, event.process);
      finish_work(event.process);
      return;
    }

    // Acceptance test verdict.
    const bool erroneous = process.pending_message_erroneous;
    if (!erroneous) {
      // Passed: confidence re-established in the passive pair (the shared
      // dirty_bit reset of RMGd's ok_ext gates).
      trace(TraceEvent::kAtPass, event.process);
      processes_[index_of(ProcessId::kP1Old)].dirty = false;
      processes_[index_of(ProcessId::kP2)].dirty = false;
      finish_work(event.process);
      return;
    }
    if (rng_.bernoulli(params_.coverage)) {
      stats_.busy_time[event.process] += now_ - process.work_started;
      process.work = Work::kNone;
      recover(event.process);
    } else {
      stats_.busy_time[event.process] += now_ - process.work_started;
      process.work = Work::kNone;
      fail(event.process);
    }
  }

  void fail(size_t culprit) {
    trace(TraceEvent::kFailure, culprit);
    stats_.failed = true;
    stats_.failure_time = now_;
    finished_ = true;
  }

  void recover(size_t detector) {
    trace(TraceEvent::kDetection, detector);
    stats_.detected = true;
    stats_.detection_time = now_;
    if (!options_.continue_after_recovery) {
      finished_ = true;
      return;
    }
    // Rollback/roll-forward to a consistent clean global state; P1old takes
    // over, safeguards end.
    safeguards_on_ = false;
    for (Process& process : processes_) {
      process.contaminated = false;
      process.dirty = false;
      process.always_dirty = false;
      process.needs_checkpoint = false;
    }
    Process& p1n = processes_[index_of(ProcessId::kP1New)];
    Process& p1o = processes_[index_of(ProcessId::kP1Old)];
    p1n.in_mission = false;  // retired
    p1o.in_mission = true;
    schedule_send(index_of(ProcessId::kP1Old));
    schedule_fault(index_of(ProcessId::kP1Old), params_.mu_old);
    // Only a failure can end the run from here: the normal mode has no ATs,
    // so no second detection exists — mirroring RMGd's post-recovery states.
  }

  const core::GsuParameters params_;
  sim::Rng& rng_;
  const ProtocolOptions options_;

  Process processes_[kProcessCount];
  sim::EventQueue<Event> queue_;
  double now_ = 0.0;
  bool safeguards_on_ = true;
  bool finished_ = false;
  RunStats stats_;
};

}  // namespace

RunStats run_guarded_operation(const core::GsuParameters& params, sim::Rng& rng,
                               const ProtocolOptions& options) {
  return Simulation(params, rng, options).run();
}

}  // namespace gop::mdcd
