#include "core/sensitivity.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gop::core {

const char* parameter_name(GsuParameterId id) {
  switch (id) {
    case GsuParameterId::kTheta:
      return "theta";
    case GsuParameterId::kLambda:
      return "lambda";
    case GsuParameterId::kMuNew:
      return "mu_new";
    case GsuParameterId::kMuOld:
      return "mu_old";
    case GsuParameterId::kCoverage:
      return "coverage";
    case GsuParameterId::kPExt:
      return "p_ext";
    case GsuParameterId::kAlpha:
      return "alpha";
    case GsuParameterId::kBeta:
      return "beta";
  }
  return "unknown";
}

double get_parameter(const GsuParameters& params, GsuParameterId id) {
  switch (id) {
    case GsuParameterId::kTheta:
      return params.theta;
    case GsuParameterId::kLambda:
      return params.lambda;
    case GsuParameterId::kMuNew:
      return params.mu_new;
    case GsuParameterId::kMuOld:
      return params.mu_old;
    case GsuParameterId::kCoverage:
      return params.coverage;
    case GsuParameterId::kPExt:
      return params.p_ext;
    case GsuParameterId::kAlpha:
      return params.alpha;
    case GsuParameterId::kBeta:
      return params.beta;
  }
  throw InternalError("unreachable parameter id");
}

void set_parameter(GsuParameters& params, GsuParameterId id, double value) {
  switch (id) {
    case GsuParameterId::kTheta:
      params.theta = value;
      return;
    case GsuParameterId::kLambda:
      params.lambda = value;
      return;
    case GsuParameterId::kMuNew:
      params.mu_new = value;
      return;
    case GsuParameterId::kMuOld:
      params.mu_old = value;
      return;
    case GsuParameterId::kCoverage:
      params.coverage = value;
      return;
    case GsuParameterId::kPExt:
      params.p_ext = value;
      return;
    case GsuParameterId::kAlpha:
      params.alpha = value;
      return;
    case GsuParameterId::kBeta:
      params.beta = value;
      return;
  }
  throw InternalError("unreachable parameter id");
}

std::vector<GsuParameterId> all_parameters() {
  return {GsuParameterId::kTheta,    GsuParameterId::kLambda, GsuParameterId::kMuNew,
          GsuParameterId::kMuOld,    GsuParameterId::kCoverage, GsuParameterId::kPExt,
          GsuParameterId::kAlpha,    GsuParameterId::kBeta};
}

namespace {

double clamp_parameter(GsuParameterId id, double value) {
  if (id == GsuParameterId::kCoverage) return std::clamp(value, 0.0, 1.0);
  if (id == GsuParameterId::kPExt) return std::clamp(value, 1e-9, 1.0);
  return value;
}

double evaluate_y(const GsuParameters& params, double phi, const AnalyzerOptions& options) {
  const PerformabilityAnalyzer analyzer(params, options);
  return analyzer.evaluate(std::min(phi, params.theta)).y;
}

}  // namespace

double y_parameter_derivative(const GsuParameters& params, double phi, GsuParameterId id,
                              double rel_step, const AnalyzerOptions& options) {
  GOP_REQUIRE(rel_step > 0.0, "rel_step must be positive");
  const double base = get_parameter(params, id);
  GOP_REQUIRE(base != 0.0, "finite difference around zero parameter value is unsupported");
  const double h = std::abs(base) * rel_step;

  GsuParameters up = params;
  set_parameter(up, id, clamp_parameter(id, base + h));
  GsuParameters down = params;
  set_parameter(down, id, clamp_parameter(id, base - h));

  const double actual_step = get_parameter(up, id) - get_parameter(down, id);
  GOP_REQUIRE(actual_step > 0.0, "parameter clamping collapsed the finite-difference step");
  return (evaluate_y(up, phi, options) - evaluate_y(down, phi, options)) / actual_step;
}

double TornadoEntry::swing() const { return std::abs(y_high - y_low); }

std::vector<TornadoEntry> tornado_y(const GsuParameters& params, double phi,
                                    double rel_variation, const AnalyzerOptions& options) {
  GOP_REQUIRE(rel_variation > 0.0 && rel_variation < 1.0, "rel_variation must be in (0,1)");
  const double y_base = evaluate_y(params, phi, options);

  std::vector<TornadoEntry> entries;
  for (GsuParameterId id : all_parameters()) {
    const double base = get_parameter(params, id);
    TornadoEntry entry;
    entry.parameter = id;
    entry.y_base = y_base;
    entry.low_value = clamp_parameter(id, base * (1.0 - rel_variation));
    entry.high_value = clamp_parameter(id, base * (1.0 + rel_variation));

    GsuParameters low = params;
    set_parameter(low, id, entry.low_value);
    GsuParameters high = params;
    set_parameter(high, id, entry.high_value);

    entry.y_low = evaluate_y(low, phi, options);
    entry.y_high = evaluate_y(high, phi, options);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const TornadoEntry& a, const TornadoEntry& b) { return a.swing() > b.swing(); });
  return entries;
}

}  // namespace gop::core
