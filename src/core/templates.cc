#include "core/templates.hh"

#include <memory>
#include <utility>
#include <vector>

#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "util/error.hh"

namespace gop::core {

namespace {

using san::tpl::Assignment;
using san::tpl::Instance;
using san::tpl::ParamSpec;
using san::tpl::Template;

/// The eight Table-3 parameters every paper family shares. Ranges mirror
/// GsuParameters::validate() (positivity via a tiny positive floor; coverage
/// in [0,1]); defaults are exactly table3().
std::vector<ParamSpec> gsu_param_specs() {
  const GsuParameters t3 = GsuParameters::table3();
  return {
      ParamSpec::real("theta", t3.theta, 1e-9, 1e12, "mission period (h)"),
      ParamSpec::real("lambda", t3.lambda, 1e-9, 1e12, "message-sending rate (1/h)"),
      ParamSpec::real("mu_new", t3.mu_new, 1e-30, 1e12,
                      "fault-manifestation rate of the upgraded version (1/h)"),
      ParamSpec::real("mu_old", t3.mu_old, 1e-30, 1e12,
                      "fault-manifestation rate of the old version (1/h)"),
      ParamSpec::real("coverage", t3.coverage, 0.0, 1.0, "acceptance-test coverage"),
      ParamSpec::real("p_ext", t3.p_ext, 1e-12, 1.0, "probability a message is external"),
      ParamSpec::real("alpha", t3.alpha, 1e-9, 1e12, "acceptance-test completion rate (1/h)"),
      ParamSpec::real("beta", t3.beta, 1e-9, 1e12, "checkpoint completion rate (1/h)"),
  };
}

}  // namespace

GsuParameters gsu_from_assignment(const san::tpl::Assignment& resolved) {
  GsuParameters params;
  params.theta = resolved.real_at("theta");
  params.lambda = resolved.real_at("lambda");
  params.mu_new = resolved.real_at("mu_new");
  params.mu_old = resolved.real_at("mu_old");
  params.coverage = resolved.real_at("coverage");
  params.p_ext = resolved.real_at("p_ext");
  params.alpha = resolved.real_at("alpha");
  params.beta = resolved.real_at("beta");
  params.validate();
  return params;
}

namespace {

Instance build_rmgd_instance(const Assignment& a) {
  RmGdOptions options;
  options.instantaneous_at = a.enum_at("at_policy") == "instantaneous";
  RmGd gd = build_rm_gd(gsu_from_assignment(a), options);
  Instance out;
  out.rewards = {gd.reward_p_a1(), gd.reward_ih(), gd.reward_ihf(), gd.reward_itauh(),
                 gd.reward_detected()};
  out.model = std::make_unique<san::SanModel>(std::move(gd.model));
  return out;
}

Instance build_rmgp_instance(const Assignment& a) {
  RmGpOptions options;
  options.duration_stages = static_cast<int32_t>(a.int_at("duration_stages"));
  RmGp gp = build_rm_gp(gsu_from_assignment(a), options);
  Instance out;
  out.rewards = {gp.reward_overhead_p1n(), gp.reward_overhead_p2()};
  out.model = std::make_unique<san::SanModel>(std::move(gp.model));
  return out;
}

Instance build_rmnd_instance(const Assignment& a, bool use_mu_new) {
  const GsuParameters params = gsu_from_assignment(a);
  RmNd nd = build_rm_nd(params, use_mu_new ? params.mu_new : params.mu_old);
  Instance out;
  out.rewards = {nd.reward_no_failure()};
  out.model = std::make_unique<san::SanModel>(std::move(nd.model));
  return out;
}

}  // namespace

void register_paper_templates(san::tpl::Registry& registry) {
  {
    std::vector<ParamSpec> params = gsu_param_specs();
    params.push_back(ParamSpec::enumeration(
        "at_policy", "instantaneous", {"instantaneous", "timed"},
        "acceptance tests as instantaneous activities (the paper) or timed at rate alpha"));
    registry.add(Template("rmgd", "G-OP dependability model (paper Figure 6)",
                          std::move(params), build_rmgd_instance));
  }
  {
    std::vector<ParamSpec> params = gsu_param_specs();
    params.push_back(ParamSpec::integer(
        "duration_stages", 1, 1, 8,
        "Erlang stages for AT/checkpoint durations (1 = the paper's exponential rule)"));
    registry.add(Template("rmgp", "G-OP performance-overhead model (paper Figure 7)",
                          std::move(params), build_rmgp_instance));
  }
  registry.add(Template("rmnd-new", "normal-mode model with mu_1 = mu_new (paper Figure 8)",
                        gsu_param_specs(),
                        [](const Assignment& a) { return build_rmnd_instance(a, true); }));
  registry.add(Template("rmnd-old", "normal-mode model with mu_1 = mu_old (paper Figure 8)",
                        gsu_param_specs(),
                        [](const Assignment& a) { return build_rmnd_instance(a, false); }));
}

const san::tpl::Registry& template_registry() {
  static const san::tpl::Registry* registry = [] {
    auto* r = new san::tpl::Registry(san::tpl::builtin_families());
    register_paper_templates(*r);
    return r;
  }();
  return *registry;
}

bool is_performability_family(const std::string& family) {
  return family == "rmgd" || family == "rmgp" || family == "rmnd-new" || family == "rmnd-old";
}

}  // namespace gop::core
