#pragma once

/// \file sensitivity.hh
/// Sensitivity of the performability index to the GSU parameters: finite-
/// difference derivatives of Y(phi) and tornado tables (one-factor-at-a-time
/// variation), answering the §6-style questions — "which parameter moves the
/// optimum, and which merely scales Y?" — systematically instead of curve by
/// curve.

#include <string>
#include <vector>

#include "core/performability.hh"

namespace gop::core {

/// The scalar fields of GsuParameters, addressable for sweeps.
enum class GsuParameterId {
  kTheta,
  kLambda,
  kMuNew,
  kMuOld,
  kCoverage,
  kPExt,
  kAlpha,
  kBeta,
};

const char* parameter_name(GsuParameterId id);
double get_parameter(const GsuParameters& params, GsuParameterId id);
void set_parameter(GsuParameters& params, GsuParameterId id, double value);

/// All eight parameter ids.
std::vector<GsuParameterId> all_parameters();

/// dY/dparam at fixed phi, by central finite difference with relative step
/// `rel_step`. Builds two analyzers per call.
double y_parameter_derivative(const GsuParameters& params, double phi, GsuParameterId id,
                              double rel_step = 1e-3, const AnalyzerOptions& options = {});

struct TornadoEntry {
  GsuParameterId parameter;
  double low_value = 0.0;   ///< parameter at -variation
  double high_value = 0.0;  ///< parameter at +variation
  double y_low = 0.0;       ///< Y(phi) at low_value
  double y_high = 0.0;      ///< Y(phi) at high_value
  double y_base = 0.0;

  /// |y_high - y_low|: the bar length in a tornado chart.
  double swing() const;
};

/// One-factor-at-a-time variation of every parameter by +/- rel_variation
/// (coverage is clamped to [0, 1]; phi is clamped to the varied theta when
/// theta shrinks below it). Sorted by descending swing.
std::vector<TornadoEntry> tornado_y(const GsuParameters& params, double phi,
                                    double rel_variation = 0.2,
                                    const AnalyzerOptions& options = {});

}  // namespace gop::core
