#include "core/gamma.hh"

#include <algorithm>

namespace gop::core {

double evaluate_gamma(GammaPolicy policy, const GammaInputs& inputs, double constant_gamma) {
  GOP_REQUIRE(inputs.theta > 0.0, "gamma: theta must be positive");
  switch (policy) {
    case GammaPolicy::kPaperLinear:
      return std::clamp(1.0 - inputs.i_tau_h / inputs.theta, 0.0, 1.0);
    case GammaPolicy::kLiteralLinear:
      return std::clamp(1.0 - inputs.i_tau_h_literal / inputs.theta, 0.0, 1.0);
    case GammaPolicy::kConstant:
      GOP_REQUIRE(constant_gamma >= 0.0 && constant_gamma <= 1.0,
                  "constant gamma must be in [0,1]");
      return constant_gamma;
    case GammaPolicy::kConditionalMean: {
      if (inputs.p_detected <= 0.0) return 1.0;  // no detection mass: no discount applies
      const double conditional_mean = inputs.i_tau_h_literal / inputs.p_detected;
      return std::clamp(1.0 - conditional_mean / inputs.theta, 0.0, 1.0);
    }
  }
  throw InternalError("unreachable gamma policy");
}

const char* gamma_policy_name(GammaPolicy policy) {
  switch (policy) {
    case GammaPolicy::kPaperLinear:
      return "paper-linear";
    case GammaPolicy::kLiteralLinear:
      return "literal-linear";
    case GammaPolicy::kConstant:
      return "constant";
    case GammaPolicy::kConditionalMean:
      return "conditional-mean";
  }
  return "unknown";
}

}  // namespace gop::core
