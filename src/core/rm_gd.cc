#include "core/rm_gd.hh"

#include "san/expr.hh"

namespace gop::core {

using namespace gop::san;

RmGd build_rm_gd(const GsuParameters& params, const RmGdOptions& options) {
  params.validate();

  RmGd rm{SanModel("RMGd"), {}, {}, {}, {}, {}, {}};
  SanModel& m = rm.model;

  rm.p1n_ctn = m.add_place("P1Nctn");
  rm.p1o_ctn = m.add_place("P1Octn");
  rm.p2_ctn = m.add_place("P2ctn");
  rm.dirty_bit = m.add_place("dirty_bit");
  rm.detected = m.add_place("detected");
  rm.failure = m.add_place("failure");

  // AT-pending places: an external message from a potentially contaminated
  // sender awaits its (instantaneous) acceptance test. These markings are
  // vanishing; the AT activities below eliminate them.
  const PlaceRef p1n_at = m.add_place("P1Nat");
  const PlaceRef p2_at = m.add_place("P2at");

  const Predicate in_gop =
      all_of({mark_eq(rm.detected, 0), mark_eq(rm.failure, 0)});
  const Predicate in_normal =
      all_of({mark_eq(rm.detected, 1), mark_eq(rm.failure, 0)});

  // Recovery cleanup: the MDCD rollback/roll-forward brings the system into
  // a consistent global state; per the paper's §4.1 the surviving processes
  // are "as clean as at time zero".
  const Effect recover = sequence({set_mark(rm.detected, 1), set_mark(rm.dirty_bit, 0),
                                   set_mark(rm.p1n_ctn, 0), set_mark(rm.p1o_ctn, 0),
                                   set_mark(rm.p2_ctn, 0)});

  // --- fault manifestation --------------------------------------------------

  // P1new runs only during G-OP (it is retired on recovery).
  m.add_timed_activity("P1Nfm",
                       all_of({in_gop, mark_eq(rm.p1n_ctn, 0)}),
                       constant_rate(params.mu_new), set_mark(rm.p1n_ctn, 1));

  // P2 runs in both modes.
  m.add_timed_activity("P2fm",
                       all_of({mark_eq(rm.failure, 0), mark_eq(rm.p2_ctn, 0)}),
                       constant_rate(params.mu_old), set_mark(rm.p2_ctn, 1));

  // P1old is in mission operation only after recovery. (During G-OP its
  // outbound messages are suppressed and recovery restores a clean state, so
  // pre-recovery contamination of the shadow has no observable effect; see
  // DESIGN.md.)
  m.add_timed_activity("P1Ofm",
                       all_of({in_normal, mark_eq(rm.p1o_ctn, 0)}),
                       constant_rate(params.mu_old), set_mark(rm.p1o_ctn, 1));

  // Installs an acceptance test on `pending`: the paper's instantaneous
  // form, or a timed activity at rate alpha for the ablation variant
  // (RmGdOptions::instantaneous_at == false).
  const auto add_at = [&](const std::string& name, PlaceRef pending,
                          std::vector<Case> cases) {
    if (options.instantaneous_at) {
      InstantaneousActivity at;
      at.name = name;
      at.enabled = has_tokens(pending);
      at.cases = std::move(cases);
      m.add_instantaneous_activity(std::move(at));
    } else {
      TimedActivity at;
      at.name = name;
      at.enabled = has_tokens(pending);
      at.rate = constant_rate(params.alpha);
      at.cases = std::move(cases);
      m.add_timed_activity(std::move(at));
    }
  };

  // --- P1new message passing (G-OP mode) -------------------------------------

  {
    TimedActivity activity;
    activity.name = "P1Nmsg";
    // In the timed-AT variant the sender is blocked while its message is
    // under validation.
    activity.enabled = options.instantaneous_at
                           ? in_gop
                           : all_of({in_gop, mark_eq(p1n_at, 0)});
    activity.rate = constant_rate(params.lambda);
    // External: P1new is always considered potentially contaminated during
    // G-OP, so every external message undergoes the AT (vanishing marking).
    activity.cases.push_back(Case{constant_prob(params.p_ext), set_mark(p1n_at, 1)});
    // Internal (to P2): marks P2 potentially contaminated and propagates any
    // actual contamination.
    activity.cases.push_back(
        Case{constant_prob(1.0 - params.p_ext),
             sequence({set_mark(rm.dirty_bit, 1),
                       when(mark_eq(rm.p1n_ctn, 1), set_mark(rm.p2_ctn, 1))})});
    m.add_timed_activity(std::move(activity));
  }

  // AT on P1new's external message. Correct messages pass and reset
  // dirty_bit (the paper's P1Nok_ext gate); erroneous messages are detected
  // with probability c, otherwise the system fails.
  {
    const Predicate erroneous = mark_eq(rm.p1n_ctn, 1);
    std::vector<Case> cases;
    cases.push_back(Case{cond_prob(erroneous, 0.0, 1.0),
                         sequence({set_mark(p1n_at, 0), set_mark(rm.dirty_bit, 0)})});
    cases.push_back(Case{cond_prob(erroneous, params.coverage, 0.0),
                         sequence({set_mark(p1n_at, 0), recover})});
    cases.push_back(Case{cond_prob(erroneous, 1.0 - params.coverage, 0.0),
                         sequence({set_mark(p1n_at, 0), set_mark(rm.failure, 1)})});
    add_at("P1N_AT", p1n_at, std::move(cases));
  }

  // --- P2 message passing (G-OP mode) ----------------------------------------

  {
    TimedActivity activity;
    activity.name = "P2msg";
    activity.enabled = options.instantaneous_at
                           ? in_gop
                           : all_of({in_gop, mark_eq(p2_at, 0)});
    activity.rate = constant_rate(params.lambda);
    const Predicate dirty = mark_eq(rm.dirty_bit, 1);
    // External while considered potentially contaminated: AT (vanishing).
    activity.cases.push_back(Case{cond_prob(dirty, params.p_ext, 0.0), set_mark(p2_at, 1)});
    // External while considered clean: no AT; a dormant contamination is an
    // undetected erroneous external message, i.e. system failure.
    activity.cases.push_back(Case{cond_prob(dirty, 0.0, params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.failure, 1))});
    // Internal (to P1new / P1old): propagates actual contamination to the
    // shadow pair. P1new is potentially contaminated by definition, and the
    // shared dirty_bit already reflects P2's considered state, so no
    // considered-state change.
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.p1n_ctn, 1))});
    m.add_timed_activity(std::move(activity));
  }

  // AT on P2's external message (same policy as P1new's AT; the pass case is
  // the paper's P2ok_ext gate resetting dirty_bit).
  {
    const Predicate erroneous = mark_eq(rm.p2_ctn, 1);
    std::vector<Case> cases;
    cases.push_back(Case{cond_prob(erroneous, 0.0, 1.0),
                         sequence({set_mark(p2_at, 0), set_mark(rm.dirty_bit, 0)})});
    cases.push_back(Case{cond_prob(erroneous, params.coverage, 0.0),
                         sequence({set_mark(p2_at, 0), recover})});
    cases.push_back(Case{cond_prob(erroneous, 1.0 - params.coverage, 0.0),
                         sequence({set_mark(p2_at, 0), set_mark(rm.failure, 1)})});
    add_at("P2_AT", p2_at, std::move(cases));
  }

  // --- normal mode after recovery (P1old + P2, no safeguards) ----------------

  {
    TimedActivity activity;
    activity.name = "P1Omsg";
    activity.enabled = in_normal;
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext),
                                  when(mark_eq(rm.p1o_ctn, 1), set_mark(rm.failure, 1))});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext),
                                  when(mark_eq(rm.p1o_ctn, 1), set_mark(rm.p2_ctn, 1))});
    m.add_timed_activity(std::move(activity));
  }

  {
    TimedActivity activity;
    activity.name = "P2msgN";
    activity.enabled = in_normal;
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.failure, 1))});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.p1o_ctn, 1))});
    m.add_timed_activity(std::move(activity));
  }

  return rm;
}

san::RewardStructure RmGd::reward_ih() const {
  RewardStructure reward("Ih");
  reward.add(all_of({mark_eq(detected, 1), mark_eq(failure, 0)}), 1.0);
  return reward;
}

san::RewardStructure RmGd::reward_itauh() const {
  RewardStructure reward("Itauh");
  reward.add(mark_eq(detected, 0), 1.0);
  reward.add(all_of({mark_eq(detected, 0), mark_eq(failure, 1)}), -1.0);
  return reward;
}

san::RewardStructure RmGd::reward_ihf() const {
  RewardStructure reward("Ihf");
  reward.add(all_of({mark_eq(detected, 1), mark_eq(failure, 1)}), 1.0);
  return reward;
}

san::RewardStructure RmGd::reward_p_a1() const {
  RewardStructure reward("P_A1");
  reward.add(all_of({mark_eq(detected, 0), mark_eq(failure, 0)}), 1.0);
  return reward;
}

san::RewardStructure RmGd::reward_detected() const {
  RewardStructure reward("detected");
  reward.add(mark_eq(detected, 1), 1.0);
  return reward;
}

}  // namespace gop::core
