#pragma once

/// \file params.hh
/// The guarded-software-upgrading (GSU) system parameters of the paper's §6
/// (Table 3). All rates are per hour; all durations are in hours.

#include <string>

namespace gop::core {

struct GsuParameters {
  /// Mission period: time from the start of guarded operation to the next
  /// scheduled onboard upgrade (theta).
  double theta = 10000.0;

  /// Message-sending rate of a process (lambda). 1200/h = one message every
  /// three seconds.
  double lambda = 1200.0;

  /// Fault-manifestation rate of the newly upgraded software version
  /// (mu_new).
  double mu_new = 1e-4;

  /// Fault-manifestation rate of an old, well-exercised software version
  /// (mu_old).
  double mu_old = 1e-8;

  /// Acceptance-test coverage: probability that an erroneous external
  /// message is detected by the AT (c).
  double coverage = 0.95;

  /// Probability that a message a process sends is external (p_ext).
  double p_ext = 0.1;

  /// Acceptance-test completion rate (alpha). 6000/h = 600 ms per AT.
  double alpha = 6000.0;

  /// Checkpoint-establishment completion rate (beta). 6000/h = 600 ms per
  /// checkpoint.
  double beta = 6000.0;

  /// The paper's Table 3 baseline assignment.
  static GsuParameters table3();

  /// A mission-compressed variant of Table 3 for Monte Carlo validation:
  /// theta shrinks by `compression` while the fault rates grow by it, so the
  /// dependability ratios (mu_new*theta, mu_old*theta) and the performance
  /// ratios (lambda*p_ext/alpha, hence rho1/rho2) are all preserved — only
  /// the message/fault time-scale separation lambda/mu drops by
  /// compression^2, which stays large (>= 1e3) up to the default. Simulated
  /// mission paths cost `compression` times fewer events, making
  /// path-by-path validation of the untranslated formulation affordable.
  static GsuParameters scaled_mission(double compression = 100.0);

  /// Throws gop::InvalidArgument when any parameter is out of range.
  void validate() const;

  /// One-line summary for benchmark headers.
  std::string to_string() const;
};

}  // namespace gop::core
