#pragma once

/// \file approximation.hh
/// Closed-form approximation of the performability index — no SAN, no state
/// space, just the dominant-term structure of the models:
///
///  - messages are orders of magnitude faster than faults, so a fault
///    manifestation reaches its verdict (detection w.p. c, failure w.p. 1-c)
///    essentially immediately on the mission time scale;
///  - hence P(X'_phi in A'1) ~ exp(-mu_gop phi) with
///    mu_gop = mu_new + mu_old (P1new and P2 manifesting during G-OP);
///  - Ih ~ c (1 - exp(-mu_gop phi)),  Itauh ~ (1 - exp(-mu_gop phi))/mu_gop
///    (the censored Table-1 variant), Ihf ~ 0;
///  - normal-mode survival ~ exp(-(mu_1 + mu_old) t).
///
/// Assembled through the same Eq 1/8/15/16/21 pipeline as the exact solver.
/// Useful as a sanity oracle (the exact solution must stay within a couple
/// of percent at Table-3-like time-scale separation) and as a zero-cost
/// preview for interactive parameter exploration.

#include "core/params.hh"

namespace gop::core {

struct ApproximateResult {
  double phi = 0.0;
  double y = 1.0;
  double e_w0 = 0.0;
  double e_wphi = 0.0;
  double gamma = 1.0;
};

/// Approximates Y(phi). `rho1`/`rho2` are the steady-state forward-progress
/// fractions; pass the RMGp solutions, or their own closed-form
/// approximations from approximate_rho1/approximate_rho2.
ApproximateResult approximate_y(const GsuParameters& params, double phi, double rho1,
                                double rho2);

/// rho1 ~ 1 - (lambda p_ext / alpha): P1new spends lambda*p_ext AT sessions
/// of mean 1/alpha per hour.
double approximate_rho1(const GsuParameters& params);

/// rho2 from the renewal cycle of P2's dirty bit: set by P1new's internal
/// messages (rate lambda (1-p_ext)), cleared by successful ATs of either
/// process (rate ~ 2 lambda p_ext); overhead = checkpoint work + AT work per
/// cycle. A cruder estimate than RMGp, good to ~20% relative.
double approximate_rho2(const GsuParameters& params);

}  // namespace gop::core
