#include "core/sweep.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "par/thread_pool.hh"
#include "util/error.hh"

namespace gop::core {

namespace {

/// Resolves the "0 = auto" convention and never asks for more workers than
/// there are points to evaluate.
size_t resolve_threads(size_t requested, size_t points) {
  const size_t threads = requested > 0 ? requested : par::default_thread_count();
  return std::max<size_t>(1, std::min(threads, points));
}

}  // namespace

std::vector<double> linspace(double lo, double hi, size_t n) {
  GOP_REQUIRE(n >= 2, "linspace needs at least two points");
  GOP_REQUIRE(lo <= hi, "linspace needs lo <= hi");
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  out.back() = hi;  // exact endpoint despite roundoff
  return out;
}

std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis,
                                            const SweepOptions& options) {
  // The whole sweep is one batched evaluation: four chain sessions cover the
  // entire grid (split into segments beyond four threads) instead of one
  // solver run per (point, measure). evaluate_batch is bit-identical to the
  // old per-point loop at every thread count; see docs/solver-architecture.md.
  const size_t threads = resolve_threads(options.threads, phis.size());
  return analyzer.evaluate_batch(phis, threads);
}

OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options) {
  GOP_REQUIRE(options.grid_points >= 3, "need at least three grid points");
  const double theta = analyzer.parameters().theta;

  // Coarse scan as one batched evaluation. The argmax is taken by a serial
  // in-order pass over the index-placed results, so the selected bracket (and
  // the serial loop's first-wins tie-breaking) never depends on scheduling.
  const std::vector<double> grid = linspace(0.0, theta, options.grid_points);
  const size_t threads = resolve_threads(options.threads, grid.size());
  const std::vector<PerformabilityResult> scan = analyzer.evaluate_batch(grid, threads);

  // Every Y value ever computed is cached by its exact phi bits, and the best
  // (phi, y) pair seen so far is tracked as it is evaluated. This seeds the
  // refinement with the grid scan (a golden-section probe landing on a grid
  // phi — bracket endpoints included — costs nothing) and lets the function
  // return the best *evaluated* point instead of re-solving a midpoint.
  std::map<double, double> cache;
  OptimalPhi result;
  result.y = -1.0;
  const auto record = [&result](double phi, double y) {
    if (y > result.y) {
      result.y = y;
      result.phi = phi;
    }
  };
  const auto eval = [&](double phi) {
    const auto [it, inserted] = cache.try_emplace(phi, 0.0);
    if (inserted) it->second = analyzer.evaluate(phi).y;
    return it->second;
  };

  size_t best = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    cache.emplace(grid[i], scan[i].y);
    if (scan[i].y > result.y) best = i;
    record(grid[i], scan[i].y);
  }

  // Golden-section refinement inside the bracket around the best grid point.
  double lo = grid[best > 0 ? best - 1 : 0];
  double hi = grid[best + 1 < grid.size() ? best + 1 : grid.size() - 1];
  const double inv_golden = (std::sqrt(5.0) - 1.0) / 2.0;

  double x1 = hi - inv_golden * (hi - lo);
  double x2 = lo + inv_golden * (hi - lo);
  double y1 = eval(x1);
  record(x1, y1);
  double y2 = eval(x2);
  record(x2, y2);
  while (hi - lo > options.phi_tolerance) {
    if (y1 < y2) {
      lo = x1;
      x1 = x2;
      y1 = y2;
      x2 = lo + inv_golden * (hi - lo);
      y2 = eval(x2);
      record(x2, y2);
    } else {
      hi = x2;
      x2 = x1;
      y2 = y1;
      x1 = hi - inv_golden * (hi - lo);
      y1 = eval(x1);
      record(x1, y1);
    }
  }

  result.beneficial = result.y > 1.0;
  return result;
}

}  // namespace gop::core
