#include "core/sweep.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::core {

std::vector<double> linspace(double lo, double hi, size_t n) {
  GOP_REQUIRE(n >= 2, "linspace needs at least two points");
  GOP_REQUIRE(lo <= hi, "linspace needs lo <= hi");
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  out.back() = hi;  // exact endpoint despite roundoff
  return out;
}

std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis) {
  std::vector<PerformabilityResult> results;
  results.reserve(phis.size());
  for (double phi : phis) results.push_back(analyzer.evaluate(phi));
  return results;
}

OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options) {
  GOP_REQUIRE(options.grid_points >= 3, "need at least three grid points");
  const double theta = analyzer.parameters().theta;

  // Coarse scan.
  const std::vector<double> grid = linspace(0.0, theta, options.grid_points);
  size_t best = 0;
  double best_y = -1.0;
  std::vector<double> ys(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    ys[i] = analyzer.evaluate(grid[i]).y;
    if (ys[i] > best_y) {
      best_y = ys[i];
      best = i;
    }
  }

  // Golden-section refinement inside the bracket around the best grid point.
  double lo = grid[best > 0 ? best - 1 : 0];
  double hi = grid[best + 1 < grid.size() ? best + 1 : grid.size() - 1];
  const double inv_golden = (std::sqrt(5.0) - 1.0) / 2.0;

  double x1 = hi - inv_golden * (hi - lo);
  double x2 = lo + inv_golden * (hi - lo);
  double y1 = analyzer.evaluate(x1).y;
  double y2 = analyzer.evaluate(x2).y;
  while (hi - lo > options.phi_tolerance) {
    if (y1 < y2) {
      lo = x1;
      x1 = x2;
      y1 = y2;
      x2 = lo + inv_golden * (hi - lo);
      y2 = analyzer.evaluate(x2).y;
    } else {
      hi = x2;
      x2 = x1;
      y2 = y1;
      x1 = hi - inv_golden * (hi - lo);
      y1 = analyzer.evaluate(x1).y;
    }
  }

  OptimalPhi result;
  result.phi = (lo + hi) / 2.0;
  result.y = analyzer.evaluate(result.phi).y;
  // The refinement only ever improves on the grid optimum; keep the better.
  if (best_y > result.y) {
    result.phi = grid[best];
    result.y = best_y;
  }
  result.beneficial = result.y > 1.0;
  return result;
}

}  // namespace gop::core
