#include "core/sweep.hh"

#include <algorithm>
#include <cmath>

#include "par/parallel_for.hh"
#include "util/error.hh"

namespace gop::core {

namespace {

/// Resolves the "0 = auto" convention and never asks for more workers than
/// there are points to evaluate.
size_t resolve_threads(size_t requested, size_t points) {
  const size_t threads = requested > 0 ? requested : par::default_thread_count();
  return std::max<size_t>(1, std::min(threads, points));
}

}  // namespace

std::vector<double> linspace(double lo, double hi, size_t n) {
  GOP_REQUIRE(n >= 2, "linspace needs at least two points");
  GOP_REQUIRE(lo <= hi, "linspace needs lo <= hi");
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  out.back() = hi;  // exact endpoint despite roundoff
  return out;
}

std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis,
                                            const SweepOptions& options) {
  const size_t threads = resolve_threads(options.threads, phis.size());
  if (threads <= 1) {
    std::vector<PerformabilityResult> results;
    results.reserve(phis.size());
    for (double phi : phis) results.push_back(analyzer.evaluate(phi));
    return results;
  }
  // PerformabilityAnalyzer::evaluate is const and touches no shared mutable
  // state (see the thread-safety note in performability.hh), so concurrent
  // phi-points need no locking; ordered_transform writes each result into its
  // index slot, making the output bit-identical to the serial loop.
  par::ThreadPool pool(threads);
  return par::ordered_transform<PerformabilityResult>(
      pool, phis.size(), 1, [&analyzer, &phis](size_t i) { return analyzer.evaluate(phis[i]); });
}

OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options) {
  GOP_REQUIRE(options.grid_points >= 3, "need at least three grid points");
  const double theta = analyzer.parameters().theta;

  // Coarse scan, optionally across the pool. The argmax is taken by a serial
  // in-order pass over the index-placed results, so the selected bracket (and
  // the serial loop's first-wins tie-breaking) never depends on scheduling.
  const std::vector<double> grid = linspace(0.0, theta, options.grid_points);
  const size_t threads = resolve_threads(options.threads, grid.size());
  std::vector<double> ys = par::ordered_transform<double>(
      grid.size(), 1, [&analyzer, &grid](size_t i) { return analyzer.evaluate(grid[i]).y; },
      threads);
  size_t best = 0;
  double best_y = -1.0;
  for (size_t i = 0; i < grid.size(); ++i) {
    if (ys[i] > best_y) {
      best_y = ys[i];
      best = i;
    }
  }

  // Golden-section refinement inside the bracket around the best grid point.
  double lo = grid[best > 0 ? best - 1 : 0];
  double hi = grid[best + 1 < grid.size() ? best + 1 : grid.size() - 1];
  const double inv_golden = (std::sqrt(5.0) - 1.0) / 2.0;

  double x1 = hi - inv_golden * (hi - lo);
  double x2 = lo + inv_golden * (hi - lo);
  double y1 = analyzer.evaluate(x1).y;
  double y2 = analyzer.evaluate(x2).y;
  while (hi - lo > options.phi_tolerance) {
    if (y1 < y2) {
      lo = x1;
      x1 = x2;
      y1 = y2;
      x2 = lo + inv_golden * (hi - lo);
      y2 = analyzer.evaluate(x2).y;
    } else {
      hi = x2;
      x2 = x1;
      y2 = y1;
      x1 = hi - inv_golden * (hi - lo);
      y1 = analyzer.evaluate(x1).y;
    }
  }

  OptimalPhi result;
  result.phi = (lo + hi) / 2.0;
  result.y = analyzer.evaluate(result.phi).y;
  // The refinement only ever improves on the grid optimum; keep the better.
  if (best_y > result.y) {
    result.phi = grid[best];
    result.y = best_y;
  }
  result.beneficial = result.y > 1.0;
  return result;
}

}  // namespace gop::core
