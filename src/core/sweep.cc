#include "core/sweep.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/templates.hh"
#include "obs/registry.hh"
#include "par/parallel_for.hh"
#include "par/thread_pool.hh"
#include "san/hash.hh"
#include "san/session.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::core {

namespace {

/// Resolves the "0 = auto" convention and never asks for more workers than
/// there are points to evaluate.
size_t resolve_threads(size_t requested, size_t points) {
  const size_t threads = requested > 0 ? requested : par::default_thread_count();
  return std::max<size_t>(1, std::min(threads, points));
}

}  // namespace

std::vector<double> linspace(double lo, double hi, size_t n) {
  GOP_REQUIRE(n >= 2, "linspace needs at least two points");
  GOP_REQUIRE(lo <= hi, "linspace needs lo <= hi");
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  out.back() = hi;  // exact endpoint despite roundoff
  return out;
}

std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis,
                                            const SweepOptions& options) {
  // The whole sweep is one batched evaluation: four chain sessions cover the
  // entire grid (split into segments beyond four threads) instead of one
  // solver run per (point, measure). evaluate_batch is bit-identical to the
  // old per-point loop at every thread count; see docs/solver-architecture.md.
  const size_t threads = resolve_threads(options.threads, phis.size());
  return analyzer.evaluate_batch(phis, threads);
}

OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options) {
  GOP_REQUIRE(options.grid_points >= 3, "need at least three grid points");
  const double theta = analyzer.parameters().theta;

  // Coarse scan as one batched evaluation. The argmax is taken by a serial
  // in-order pass over the index-placed results, so the selected bracket (and
  // the serial loop's first-wins tie-breaking) never depends on scheduling.
  const std::vector<double> grid = linspace(0.0, theta, options.grid_points);
  const size_t threads = resolve_threads(options.threads, grid.size());
  const std::vector<PerformabilityResult> scan = analyzer.evaluate_batch(grid, threads);

  // Every Y value ever computed is cached by its exact phi bits, and the best
  // (phi, y) pair seen so far is tracked as it is evaluated. This seeds the
  // refinement with the grid scan (a golden-section probe landing on a grid
  // phi — bracket endpoints included — costs nothing) and lets the function
  // return the best *evaluated* point instead of re-solving a midpoint.
  std::map<double, double> cache;
  OptimalPhi result;
  result.y = -1.0;
  const auto record = [&result](double phi, double y) {
    if (y > result.y) {
      result.y = y;
      result.phi = phi;
    }
  };
  const auto eval = [&](double phi) {
    const auto [it, inserted] = cache.try_emplace(phi, 0.0);
    if (inserted) it->second = analyzer.evaluate(phi).y;
    return it->second;
  };

  size_t best = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    cache.emplace(grid[i], scan[i].y);
    if (scan[i].y > result.y) best = i;
    record(grid[i], scan[i].y);
  }

  // Golden-section refinement inside the bracket around the best grid point.
  double lo = grid[best > 0 ? best - 1 : 0];
  double hi = grid[best + 1 < grid.size() ? best + 1 : grid.size() - 1];
  const double inv_golden = (std::sqrt(5.0) - 1.0) / 2.0;

  double x1 = hi - inv_golden * (hi - lo);
  double x2 = lo + inv_golden * (hi - lo);
  double y1 = eval(x1);
  record(x1, y1);
  double y2 = eval(x2);
  record(x2, y2);
  while (hi - lo > options.phi_tolerance) {
    if (y1 < y2) {
      lo = x1;
      x1 = x2;
      y1 = y2;
      x2 = lo + inv_golden * (hi - lo);
      y2 = eval(x2);
      record(x2, y2);
    } else {
      hi = x2;
      x2 = x1;
      y2 = y1;
      x1 = hi - inv_golden * (hi - lo);
      y1 = eval(x1);
      record(x1, y1);
    }
  }

  result.beneficial = result.y > 1.0;
  return result;
}

namespace {

/// One cross-product point: the axis value indices, first axis slowest.
std::vector<std::vector<size_t>> cross_product(const std::vector<StructuralAxis>& axes) {
  size_t cells = 1;
  for (const StructuralAxis& axis : axes) {
    GOP_REQUIRE(!axis.values.empty(),
                "structural_sweep: axis '" + axis.param + "' has no values");
    cells *= axis.values.size();
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(cells);
  std::vector<size_t> odometer(axes.size(), 0);
  for (size_t c = 0; c < cells; ++c) {
    out.push_back(odometer);
    for (size_t a = axes.size(); a-- > 0;) {
      if (++odometer[a] < axes[a].values.size()) break;
      odometer[a] = 0;
    }
  }
  return out;
}

StructuralCell evaluate_cell(const san::tpl::Template& tpl, const StructuralSweepSpec& spec,
                             const std::vector<size_t>& choice) {
  // Cell assignment: base overridden by this cell's axis values.
  san::tpl::Assignment overrides = spec.base;
  std::string label;
  for (size_t a = 0; a < spec.axes.size(); ++a) {
    const san::tpl::ParamValue& value = spec.axes[a].values[choice[a]];
    overrides.set(spec.axes[a].param, value);
    if (!label.empty()) label += ',';
    label += spec.axes[a].param + '=' + value.to_string();
  }
  if (label.empty()) label = "default";

  san::tpl::Instance instance = tpl.instantiate(overrides);

  StructuralCell cell;
  cell.assignment = instance.resolved;
  cell.label = std::move(label);
  cell.params_hash = instance.params_hash;

  const san::GeneratedChain chain = san::generate_state_space(*instance.model);
  cell.chain_hash = san::chain_hash(chain);
  cell.states = chain.state_count();

  // Which rewards: the requested subset (validated), or the whole catalog.
  std::vector<const san::RewardStructure*> rewards;
  if (spec.rewards.empty()) {
    for (const san::RewardStructure& r : instance.rewards) rewards.push_back(&r);
  } else {
    for (const std::string& name : spec.rewards) {
      const san::RewardStructure* found = nullptr;
      for (const san::RewardStructure& r : instance.rewards) {
        if (r.name() == name) {
          found = &r;
          break;
        }
      }
      GOP_REQUIRE(found != nullptr, "structural_sweep: family '" + spec.family +
                                        "' has no reward named '" + name + "'");
      rewards.push_back(found);
    }
  }

  // One session solves the whole grid; certificates ride on the recovery
  // ladder when the spec asks for one.
  san::GridSolveOptions solve_options;
  solve_options.transient = true;
  solve_options.recovery = spec.recovery;
  const san::ChainSession session(chain, spec.phis, solve_options);
  const markov::SolverPlan& plan = session.transient_plan();
  cell.engine = plan.engine;
  cell.storage = markov::to_string(plan.storage);
  for (const san::RewardStructure* reward : rewards) {
    cell.rewards.push_back(reward->name());
    cell.series.push_back(session.instant_reward_series(*reward));
  }
  if (const std::optional<markov::Certificate>& cert = session.transient_session().certificate()) {
    cell.certificates.push_back({"transient_session", *cert});
  }

  // Paper families additionally get the full performability pipeline at the
  // same grid (Y(phi) per point), built from the cell's Table-3 parameters.
  if (is_performability_family(spec.family)) {
    const PerformabilityAnalyzer analyzer(gsu_from_assignment(cell.assignment));
    cell.performability = analyzer.evaluate_batch(spec.phis, 1);
  }

  if (obs::enabled()) {
    obs::SolverEvent event;
    event.kind = obs::SolverEventKind::kStructuralCell;
    event.method = spec.family;
    event.detail = cell.label;
    event.states = cell.states;
    event.t = spec.phis.empty() ? 0.0 : spec.phis.back();
    event.grid_points = spec.phis.size();
    obs::record_event(std::move(event));
  }
  static obs::Counter& cells_counter = obs::counter("core.structural_cells");
  cells_counter.add(1);

  return cell;
}

}  // namespace

StructuralSweepResult structural_sweep(const StructuralSweepSpec& spec) {
  GOP_REQUIRE(!spec.phis.empty(), "structural_sweep: empty evaluation grid");
  GOP_REQUIRE(std::is_sorted(spec.phis.begin(), spec.phis.end()),
              "structural_sweep: grid must be sorted non-decreasing");
  const san::tpl::Template& tpl = template_registry().find(spec.family);
  for (const StructuralAxis& axis : spec.axes) {
    GOP_REQUIRE(tpl.find_param(axis.param) != nullptr,
                "structural_sweep: template '" + spec.family + "' has no parameter '" +
                    axis.param + "'");
  }

  const std::vector<std::vector<size_t>> cells = cross_product(spec.axes);
  StructuralSweepResult result;
  result.family = spec.family;
  result.phis = spec.phis;

  // Cells are independent; ordered_transform places each by index, so the
  // result is bit-identical at every thread count.
  const size_t threads = resolve_threads(spec.threads, cells.size());
  result.cells = par::ordered_transform<StructuralCell>(
      cells.size(), 1, [&](size_t i) { return evaluate_cell(tpl, spec, cells[i]); }, threads);
  return result;
}

}  // namespace gop::core
