#include "core/mc_validator.hh"

#include <algorithm>

#include "util/error.hh"

namespace gop::core {

namespace {

/// Per-state mask of a 0/1 place being set, over a generated chain.
std::vector<bool> place_mask(const san::GeneratedChain& chain, san::PlaceRef place) {
  std::vector<bool> mask(chain.state_count(), false);
  for (size_t s = 0; s < chain.state_count(); ++s) mask[s] = chain.states()[s][place.index] == 1;
  return mask;
}

}  // namespace

McValidator::McValidator(const GsuParameters& params, McOptions options)
    : params_(params),
      options_(options),
      gd_(build_rm_gd(params_)),
      nd_new_(build_rm_nd(params_, params_.mu_new)),
      nd_old_(build_rm_nd(params_, params_.mu_old)),
      gd_chain_(san::generate_state_space(gd_.model)),
      nd_new_chain_(san::generate_state_space(nd_new_.model)),
      nd_old_chain_(san::generate_state_space(nd_old_.model)),
      gd_detected_(place_mask(gd_chain_, gd_.detected)),
      gd_failure_(place_mask(gd_chain_, gd_.failure)),
      nd_new_failure_(place_mask(nd_new_chain_, nd_new_.failure)),
      nd_old_failure_(place_mask(nd_old_chain_, nd_old_.failure)) {
  params_.validate();
}

double McValidator::sample_w0(sim::Rng& rng) const {
  const auto outcome = markov::simulate_ctmc(
      nd_new_chain_.ctmc(), rng, params_.theta,
      [this](size_t s) { return nd_new_failure_[s]; });
  return outcome.stopped ? 0.0 : 2.0 * params_.theta;
}

double McValidator::sample_wphi(sim::Rng& rng, double phi, double rho_sum, double gamma) const {
  GOP_REQUIRE(phi >= 0.0 && phi <= params_.theta, "phi must lie in [0, theta]");
  const double theta = params_.theta;

  // Guarded operation until the first of: error detection, failure, phi.
  // (The trajectory runs on RMGd's tangible chain — message self-loops never
  // appear as events, so a mission path costs a handful of draws.)
  const auto gop = markov::simulate_ctmc(
      gd_chain_.ctmc(), rng, phi,
      [this](size_t s) { return gd_detected_[s] || gd_failure_[s]; });

  if (gop.stopped && gd_failure_[gop.state]) {
    return 0.0;  // undetected erroneous external message during G-OP
  }

  if (gop.stopped) {
    // S2: detection at tau = gop.time; the recovered system (P1old + P2)
    // services the mission through theta - tau under the normal mode.
    const double tau = gop.time;
    const auto rest = markov::simulate_ctmc(
        nd_old_chain_.ctmc(), rng, theta - tau,
        [this](size_t s) { return nd_old_failure_[s]; });
    if (rest.stopped) return 0.0;
    const double discount =
        options_.per_path_gamma ? std::clamp(1.0 - tau / theta, 0.0, 1.0) : gamma;
    return discount * (rho_sum * tau + 2.0 * (theta - tau));
  }

  // S1: guarded operation concluded without error; the upgraded system
  // (P1new + P2) continues through theta - phi under the normal mode.
  const auto rest = markov::simulate_ctmc(
      nd_new_chain_.ctmc(), rng, theta - phi,
      [this](size_t s) { return nd_new_failure_[s]; });
  if (rest.stopped) return 0.0;
  return rho_sum * phi + 2.0 * (theta - phi);
}

McPerformability McValidator::estimate(double phi, double rho1, double rho2,
                                       double gamma) const {
  const double rho_sum = rho1 + rho2;

  sim::ReplicationOptions rep = options_.replications;
  const auto w0 = sim::run_replications([&](sim::Rng& rng) { return sample_w0(rng); }, rep);
  rep.seed += 1;
  const auto wphi = sim::run_replications(
      [&](sim::Rng& rng) { return sample_wphi(rng, phi, rho_sum, gamma); }, rep);

  McPerformability result;
  result.phi = phi;
  result.e_w0 = McEstimate{w0.mean(), w0.half_width(), w0.replications()};
  result.e_wphi = McEstimate{wphi.mean(), wphi.half_width(), wphi.replications()};

  const double e_wi = 2.0 * params_.theta;
  const double denom = e_wi - result.e_wphi.mean;
  GOP_CHECK_NUMERIC(denom > 0.0, "Monte Carlo E[Wphi] reached E[WI]");
  result.y = (e_wi - result.e_w0.mean) / denom;

  // Conservative interval: push both CIs to their extremes.
  const double num_lo = e_wi - (result.e_w0.mean + result.e_w0.half_width);
  const double num_hi = e_wi - (result.e_w0.mean - result.e_w0.half_width);
  const double den_lo = e_wi - (result.e_wphi.mean - result.e_wphi.half_width);
  const double den_hi = e_wi - (result.e_wphi.mean + result.e_wphi.half_width);
  result.y_low = num_lo / std::max(den_lo, 1e-300);
  result.y_high = num_hi / std::max(den_hi, 1e-300);
  return result;
}

}  // namespace gop::core
