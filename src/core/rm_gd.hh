#pragma once

/// \file rm_gd.hh
/// RMGd — the SAN reward model of system behaviour during the pre-designated
/// guarded-operation interval [0, phi] (the paper's Figure 6), supporting the
/// dependability constituent measures of Table 1.
///
/// The model covers the stochastic process X' of §4.1: the system starts in
/// the G-OP mode (P1new active under MDCD escort, P1old shadowing with its
/// outbound messages suppressed, P2 active); a successfully detected error
/// switches it to the normal mode with P1old and P2 in mission operation
/// (place `detected`); an undetected erroneous external message — or a
/// post-recovery error — is a system failure (place `failure`, absorbing).
///
/// Structure reconstructed from the paper's §2/§5.1 protocol description:
///  - fault manifestation contaminates a process (P1Nctn / P2ctn / P1Octn);
///  - internal messages from a potentially contaminated sender mark the
///    receiver potentially contaminated (`dirty_bit`) and propagate actual
///    contamination;
///  - external messages from potentially contaminated senders undergo an
///    instantaneous acceptance test with coverage c: erroneous messages are
///    detected (-> recovery) or missed (-> failure); correct messages pass
///    and reset `dirty_bit` (the paper's P1Nok_ext / P2ok_ext output gates);
///  - external messages from senders considered clean skip the AT, so a
///    dormant contamination fails the system directly;
///  - successful recovery is modelled as restoring clean process states
///    (the paper's §4.1 "as clean as at time zero" argument).

#include "core/params.hh"
#include "san/model.hh"
#include "san/reward.hh"

namespace gop::core {

/// The built model plus the place handles the reward structures predicate
/// over (named exactly as in the paper's Figure 6).
struct RmGd {
  san::SanModel model;

  san::PlaceRef p1n_ctn;    // P1Nctn: P1new actually contaminated
  san::PlaceRef p1o_ctn;    // P1Octn: P1old actually contaminated
  san::PlaceRef p2_ctn;     // P2ctn: P2 actually contaminated
  san::PlaceRef dirty_bit;  // dirty_bit: P2/P1old considered potentially contaminated
  san::PlaceRef detected;   // detected: an error was detected (recovery done)
  san::PlaceRef failure;    // failure: system failed (absorbing)

  /// Table 1 reward structures.
  /// \int_0^phi h(tau) dtau: instant-of-time at phi,
  ///   MARK(detected)==1 && MARK(failure)==0 -> 1.
  san::RewardStructure reward_ih() const;

  /// \int_0^phi tau h(tau) dtau: accumulated over [0, phi],
  ///   MARK(detected)==0 -> 1;  MARK(detected)==0 && MARK(failure)==1 -> -1.
  san::RewardStructure reward_itauh() const;

  /// \int_0^phi \int_tau^phi h(tau) f(x) dx dtau: instant-of-time at phi,
  ///   MARK(detected)==1 && MARK(failure)==1 -> 1.
  san::RewardStructure reward_ihf() const;

  /// P(X'_phi in A'_1): instant-of-time at phi,
  ///   MARK(detected)==0 && MARK(failure)==0 -> 1.
  san::RewardStructure reward_p_a1() const;

  /// P(error detected by t): instant-of-time, MARK(detected)==1 -> 1. The
  /// `detected` place is a one-way flag, so this is a CDF in t; it backs the
  /// *literal* \int tau h(tau) dtau via
  ///   phi * P(detected at phi) - \int_0^phi P(detected at t) dt
  /// (integration by parts), which the analyzer exposes alongside the
  /// Table-1 convention.
  san::RewardStructure reward_detected() const;
};

struct RmGdOptions {
  /// The paper (§5.1) models acceptance tests as *instantaneous* activities,
  /// arguing the AT duration (~1/alpha) is orders of magnitude below the
  /// mean time to error occurrence. Setting this false rebuilds the model
  /// with *timed* ATs at rate alpha (the sender blocked while its message is
  /// under validation), which quantifies that simplification — see
  /// bench_ablation_instant_at. Note the timed variant lets a fault manifest
  /// between message emission and validation, a second-order semantic skew
  /// on the order of mu/alpha.
  bool instantaneous_at = true;
};

/// Builds RMGd for the given parameters.
RmGd build_rm_gd(const GsuParameters& params, const RmGdOptions& options = {});

}  // namespace gop::core
