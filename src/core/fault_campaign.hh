#pragma once

/// \file fault_campaign.hh
/// Full-matrix fault-injection campaigns over the paper's models
/// (docs/robustness.md): every fi site x every trigger x a set of solver
/// scenarios (RMGd / RMGp / RMNd, auto and forced engines). Each cell runs
/// one scenario with one armed site and classifies what happened against the
/// fault-free baseline. The campaign invariant — enforced by the gop_fi tool
/// and the fault-campaign regression test — is that no cell is ever
/// kSilentWrong: an injected fault is either harmless, recovered within
/// tolerance, or surfaces as a structured error.

#include <cstdint>
#include <string>
#include <vector>

#include "fi/fi.hh"

namespace gop::core {

enum class CampaignOutcome {
  /// The armed site was never reached on this scenario's code path.
  kNotTriggered,
  /// The injection fired but the result matched the baseline anyway (the
  /// fault was absorbed without the recovery ladder degrading).
  kTolerated,
  /// The recovery ladder produced a within-tolerance result, degraded
  /// (retries or an engine fallback; the certificate says so).
  kRecovered,
  /// The scenario failed with a typed exception — loud, auditable failure.
  kStructuredError,
  /// A result came back that deviates from the baseline beyond tolerance:
  /// the one outcome the solvers must never produce.
  kSilentWrong,
};

const char* to_string(CampaignOutcome outcome);

/// One (scenario, site, trigger) run of the matrix.
struct CampaignCell {
  std::string scenario;
  fi::SiteId site = fi::SiteId::kLuPivotBreakdown;
  std::string trigger;
  CampaignOutcome outcome = CampaignOutcome::kNotTriggered;
  uint64_t hits = 0;        ///< armed traversals of the site in this run
  uint64_t injections = 0;  ///< how often the trigger fired
  bool degraded = false;    ///< result certificate reported retries/fallback
  std::string engine;       ///< engine that produced the accepted result
  double rel_error = 0.0;   ///< |value - baseline| / max(1, |baseline|)
  std::string error_type;   ///< exception class for kStructuredError
  std::string detail;       ///< exception message / attempt summary
};

struct CampaignOptions {
  /// Plan seed; drives the probabilistic triggers bit-reproducibly.
  uint64_t seed = 0x5eedf1u;
  /// Relative deviation from the fault-free baseline still considered
  /// correct.
  double tolerance = 1e-6;
  /// Triggers armed per (scenario, site) cell; empty selects the default
  /// matrix {on_nth(1), every(4), with_probability(0.5)}.
  std::vector<fi::Trigger> triggers;
};

struct CampaignReport {
  uint64_t seed = 0;
  double tolerance = 0.0;
  std::vector<CampaignCell> cells;

  /// True when no cell is kSilentWrong — the campaign invariant.
  bool all_safe() const;
  size_t count(CampaignOutcome outcome) const;

  std::string to_text() const;
  std::string to_json() const;
};

/// Names of the built-in solver scenarios, in campaign order.
std::vector<std::string> campaign_scenario_names();

/// Runs the full (scenario x site x trigger) matrix. Installs and clears
/// fi plans internally; not safe to run concurrently with other fi users.
/// With injection compiled out (fi::compiled_in() == false) every cell
/// reports kNotTriggered.
CampaignReport run_fault_campaign(const CampaignOptions& options = {});

}  // namespace gop::core
