#pragma once

/// \file templates.hh
/// The paper models as template families (docs/templates.md). The generic
/// template machinery is san/template.hh + san/registry.hh; this layer adds
/// the four families whose builders depend on gop_core:
///
///  - "rmgd"     — the G-OP dependability model (core/rm_gd.hh) with the
///    eight Table-3 parameters plus the `at_policy` enum selecting the
///    paper's instantaneous acceptance tests or the timed-AT ablation
///    variant (RmGdOptions::instantaneous_at);
///  - "rmgp"     — the performance-overhead model (core/rm_gp.hh) with the
///    `duration_stages` checkpoint/AT-rule variant (Erlang-k durations,
///    RmGpOptions::duration_stages);
///  - "rmnd-new" — the normal-mode model with mu_1 = mu_new;
///  - "rmnd-old" — the normal-mode model with mu_1 = mu_old.
///
/// At the parameter defaults each family builds via the same code path as
/// the hand-built seed models, so templated instances are chain_hash-
/// identical to them — the differential equivalence battery
/// (tests/san_template_test.cc) pins this.

#include <string>

#include "core/params.hh"
#include "san/registry.hh"

namespace gop::core {

/// Registers the four paper families into `registry`.
void register_paper_templates(san::tpl::Registry& registry);

/// The process-wide template catalog: the san built-in families
/// (nproc, upgrade-campaign, random) plus the paper families. Built once,
/// immutable afterwards — reads are thread-safe.
const san::tpl::Registry& template_registry();

/// True when `family` is one of the paper families, i.e. its resolved
/// assignment maps onto GsuParameters and PerformabilityAnalyzer applies.
bool is_performability_family(const std::string& family);

/// Maps a resolved paper-family assignment back to Table-3 parameters (the
/// eight shared real parameters by name; variant parameters are ignored).
GsuParameters gsu_from_assignment(const san::tpl::Assignment& resolved);

}  // namespace gop::core
