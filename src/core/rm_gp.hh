#pragma once

/// \file rm_gp.hh
/// RMGp — the SAN reward model of the performance overhead of guarded
/// operation (the paper's Figure 7): checkpoint establishments and AT-based
/// validations driven by message passing and the dynamically adjusted
/// confidence (dirty bits), under ideal environment assumptions (no faults).
///
/// Supports the steady-state overhead measures of Table 2:
///   1 - rho_1 = P(MARK(P1nExt)==1)
///   1 - rho_2 = P((MARK(P1nInt)==1 && MARK(P2DB)==0) ||
///               (MARK(P2Ext)==1 && MARK(P2DB)==1))
///
/// Model logic (from the §2/§5.1 protocol description):
///  - P1new is always potentially contaminated during G-OP, so each of its
///    external messages undergoes an AT (duration Exp(alpha), place P1nExt);
///    P1new never checkpoints (its state is never freshly "made" potentially
///    contaminated by a receipt).
///  - An internal message from P1new makes P2 potentially contaminated: when
///    P2's dirty bit is clear, P2 establishes a checkpoint (Exp(beta), the
///    sojourn with P1nInt==1 && P2DB==0) and sets the bit; otherwise the
///    checkpoint is skipped instantaneously (P2SkipCKPT).
///  - P2's external messages undergo an AT only while its dirty bit is set
///    (P2Ext==1 && P2DB==1); a clean P2 sends without validation (P2SkipAT).
///  - A successful AT re-establishes confidence: it clears both dirty bits
///    (the shared dirty_bit reset of RMGd's P1Nok_ext / P2ok_ext gates).
///  - P2's internal messages drive P1old's checkpointing symmetrically
///    (P1o_CKPT / P1oSkipCKPT with P1oDB), which does not count toward
///    rho_1/rho_2 but does block P2 while in progress.

#include "core/params.hh"
#include "san/model.hh"
#include "san/reward.hh"

namespace gop::core {

struct RmGp {
  san::SanModel model;

  san::PlaceRef p1n_ext;  // P1nExt: P1new's external message under AT
  san::PlaceRef p1n_int;  // P1nInt: internal message from P1new being handled by P2
  san::PlaceRef p2_ext;   // P2Ext: P2's external message (AT while dirty)
  san::PlaceRef p2_int;   // P2Int: internal message from P2 being handled by P1old
  san::PlaceRef p2_db;    // P2DB: P2's dirty bit
  san::PlaceRef p1o_db;   // P1oDB: P1old's dirty bit

  /// Table 2: 1 - rho_1, predicate MARK(P1nExt)==1, rate 1; steady state.
  san::RewardStructure reward_overhead_p1n() const;

  /// Table 2: 1 - rho_2, predicate (P1nInt==1 && P2DB==0) ||
  /// (P2Ext==1 && P2DB==1), rate 1; steady state.
  san::RewardStructure reward_overhead_p2() const;
};

struct RmGpOptions {
  /// Number of Erlang stages for the AT and checkpoint durations. 1 is the
  /// paper's exponential model; k > 1 keeps the means (1/alpha, 1/beta) but
  /// shrinks the squared coefficient of variation to 1/k, approaching the
  /// deterministic durations real validation code has. Used by the
  /// duration-shape ablation to test how sensitive rho1/rho2 (and hence Y)
  /// are to the exponential assumption.
  int32_t duration_stages = 1;
};

RmGp build_rm_gp(const GsuParameters& params, const RmGpOptions& options = {});

}  // namespace gop::core
