#pragma once

/// \file sweep.hh
/// phi-sweeps and optimal-duration search over the performability index —
/// the engineering question the paper's §6 answers ("which phi maximizes
/// Y?").

#include <vector>

#include "core/performability.hh"

namespace gop::core {

/// Evenly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, size_t n);

struct SweepOptions {
  /// Worker threads evaluating phi-points concurrently. 1 runs the plain
  /// serial loop; 0 picks gop::par::default_thread_count() (the GOP_THREADS
  /// environment variable, else the hardware). Results are placed by index
  /// (ordered reduction), so every thread count produces bit-identical
  /// output; see docs/parallelism.md.
  size_t threads = 1;
};

/// Evaluates Y at every phi in `phis` (each must be in [0, theta]).
std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis,
                                            const SweepOptions& options = {});

struct OptimalPhi {
  double phi = 0.0;
  double y = 0.0;
  /// True when Y(phi*) > 1, i.e. guarded operation is worthwhile at all
  /// (the paper's c = 0.10 study is the counterexample).
  bool beneficial = false;
};

struct OptimizeOptions {
  /// Coarse grid resolution for the initial scan over [0, theta].
  size_t grid_points = 41;
  /// Absolute phi tolerance of the golden-section refinement.
  double phi_tolerance = 1.0;
  /// Worker threads for the coarse grid scan (same contract as
  /// SweepOptions::threads; the golden-section refinement is inherently
  /// sequential and stays on the calling thread).
  size_t threads = 1;
};

/// Maximizes Y over [0, theta]: coarse grid scan, then golden-section
/// refinement around the best bracket. Y(phi) is smooth and, in the paper's
/// regimes, unimodal over the bracket the scan selects.
OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options = {});

}  // namespace gop::core
