#pragma once

/// \file sweep.hh
/// phi-sweeps and optimal-duration search over the performability index —
/// the engineering question the paper's §6 answers ("which phi maximizes
/// Y?") — plus structural sweeps: the same grid evaluation crossed with
/// template parameter assignments, so model *structure* (replica counts,
/// stage counts, policy variants) is swept alongside phi
/// (docs/templates.md).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/performability.hh"
#include "markov/recovery.hh"
#include "san/template.hh"

namespace gop::core {

/// Evenly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, size_t n);

struct SweepOptions {
  /// Worker threads evaluating phi-points concurrently. 1 runs the plain
  /// serial loop; 0 picks gop::par::default_thread_count() (the GOP_THREADS
  /// environment variable, else the hardware). Results are placed by index
  /// (ordered reduction), so every thread count produces bit-identical
  /// output; see docs/parallelism.md.
  size_t threads = 1;
};

/// Evaluates Y at every phi in `phis` (each must be in [0, theta]).
std::vector<PerformabilityResult> sweep_phi(const PerformabilityAnalyzer& analyzer,
                                            const std::vector<double>& phis,
                                            const SweepOptions& options = {});

struct OptimalPhi {
  double phi = 0.0;
  double y = 0.0;
  /// True when Y(phi*) > 1, i.e. guarded operation is worthwhile at all
  /// (the paper's c = 0.10 study is the counterexample).
  bool beneficial = false;
};

struct OptimizeOptions {
  /// Coarse grid resolution for the initial scan over [0, theta].
  size_t grid_points = 41;
  /// Absolute phi tolerance of the golden-section refinement.
  double phi_tolerance = 1.0;
  /// Worker threads for the coarse grid scan (same contract as
  /// SweepOptions::threads; the golden-section refinement is inherently
  /// sequential and stays on the calling thread).
  size_t threads = 1;
};

/// Maximizes Y over [0, theta]: coarse grid scan, then golden-section
/// refinement around the best bracket. Y(phi) is smooth and, in the paper's
/// regimes, unimodal over the bracket the scan selects.
OptimalPhi find_optimal_phi(const PerformabilityAnalyzer& analyzer,
                            const OptimizeOptions& options = {});

// --- structural sweeps ------------------------------------------------------

/// One sweep axis: a template parameter and the values it takes. Axes are
/// crossed (cartesian product) in order, the first axis varying slowest.
struct StructuralAxis {
  std::string param;
  std::vector<san::tpl::ParamValue> values;
};

struct StructuralSweepSpec {
  /// Template family name, resolved against core::template_registry().
  std::string family;
  /// Fixed parameter overrides applied to every cell (axis values win).
  san::tpl::Assignment base;
  /// The structural axes; empty sweeps a single cell at `base`.
  std::vector<StructuralAxis> axes;
  /// The evaluation grid (sorted non-decreasing). Every cell's chain is
  /// solved once over the whole grid through san::ChainSession; for paper
  /// families the same grid doubles as the phi grid of the
  /// PerformabilityAnalyzer (so it must stay within [0, theta]).
  std::vector<double> phis;
  /// Reward names to evaluate (subset of the family's catalog); empty means
  /// the whole catalog.
  std::vector<std::string> rewards;
  /// Worker threads across cells (0 = par::default_thread_count()). Results
  /// are placed by cell index, so output is bit-identical at any count.
  size_t threads = 1;
  /// Recovery ladder for every cell's session; certificates come from here.
  std::optional<markov::RecoveryPolicy> recovery = markov::RecoveryPolicy{};
};

/// A provenance certificate labelled with the solver family it covers (the
/// core-layer twin of serve::NamedCertificate).
struct StructuralCertificate {
  std::string solver;
  markov::Certificate certificate;
};

/// One evaluated instance of the cross-product.
struct StructuralCell {
  san::tpl::Assignment assignment;  ///< fully resolved (defaults included)
  std::string label;                ///< axis values only, "n=2,servers=1"
  uint64_t params_hash = 0;         ///< san::tpl::param_hash(assignment)
  uint64_t chain_hash = 0;          ///< san::chain_hash of the generated chain
  size_t states = 0;
  std::string engine;   ///< transient SolverPlan engine label
  std::string storage;  ///< "dense" / "sparse"
  std::vector<std::string> rewards;          ///< evaluated reward names
  std::vector<std::vector<double>> series;   ///< [reward][grid point], instant
  std::vector<StructuralCertificate> certificates;
  /// Full Y(phi) results per grid point — paper families only, empty
  /// otherwise.
  std::vector<PerformabilityResult> performability;
};

struct StructuralSweepResult {
  std::string family;
  std::vector<double> phis;
  std::vector<StructuralCell> cells;  ///< cross-product order
};

/// Instantiates and evaluates every cell of the cross-product on the gop::par
/// pool: instantiate -> generate -> one ChainSession over the grid (instant
/// reward series + certificates), plus the analyzer's Y(phi) for paper
/// families. Emits one obs kStructuralCell event per cell. Deterministic:
/// cells land in cross-product order and every value is bit-identical at any
/// thread count.
StructuralSweepResult structural_sweep(const StructuralSweepSpec& spec);

}  // namespace gop::core
