#pragma once

/// \file mc_validator.hh
/// Monte Carlo evaluation of the *untranslated* performability formulation
/// (§3.2, Eqs 3 and 4): sample paths of the mission over [0, theta] are
/// simulated directly — guarded operation until min(tau, phi), then the
/// appropriate normal-mode configuration until theta — and the mission worth
/// of each path is accumulated per Eq (4).
///
/// Agreement with the PerformabilityAnalyzer's reward-model solution is
/// evidence the successive model translation of §4 was implemented
/// correctly, and the residual difference quantifies the paper's deliberate
/// approximations (steady-state rho, the Eq 19 dropped term, the Table-1
/// Itauh semantics). This is the library's "baseline comparator".

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_nd.hh"
#include "markov/ctmc_sim.hh"
#include "san/state_space.hh"
#include "sim/replication.hh"

namespace gop::core {

struct McOptions {
  sim::ReplicationOptions replications{.seed = 20020623,  // DSN 2002 ;-)
                                       .min_replications = 1000,
                                       .max_replications = 200'000};
  /// When true, each S2 path is discounted by its own gamma = 1 - tau/theta
  /// instead of the scalar gamma the translated solution uses. Quantifies
  /// the difference between E[gamma(tau) W] and gamma-bar E[W] (ablation).
  bool per_path_gamma = false;
};

struct McEstimate {
  double mean = 0.0;
  double half_width = 0.0;  // 95% CI
  size_t replications = 0;
};

struct McPerformability {
  double phi = 0.0;
  McEstimate e_w0;
  McEstimate e_wphi;
  double y = 0.0;
  /// Conservative interval for Y from the component CIs.
  double y_low = 0.0;
  double y_high = 0.0;
};

class McValidator {
 public:
  explicit McValidator(const GsuParameters& params, McOptions options = {});

  McValidator(const McValidator&) = delete;
  McValidator& operator=(const McValidator&) = delete;

  /// One sample of W0 (Eq 3): 2 theta if the unprotected upgraded system
  /// survives theta, else 0.
  double sample_w0(sim::Rng& rng) const;

  /// One sample of Wphi (Eq 4). `rho_sum` = rho1 + rho2 and `gamma` come
  /// from the caller (typically the analyzer); gamma is ignored when
  /// per_path_gamma is set.
  double sample_wphi(sim::Rng& rng, double phi, double rho_sum, double gamma) const;

  /// Full Monte Carlo estimate of Y(phi).
  McPerformability estimate(double phi, double rho1, double rho2, double gamma) const;

 private:
  GsuParameters params_;
  McOptions options_;

  RmGd gd_;
  RmNd nd_new_;
  RmNd nd_old_;
  // Mission paths are sampled on the tangible chains (self-loop-free), so a
  // 10,000-hour trajectory costs a handful of exponential draws rather than
  // millions of message events.
  san::GeneratedChain gd_chain_;
  san::GeneratedChain nd_new_chain_;
  san::GeneratedChain nd_old_chain_;
  std::vector<bool> gd_detected_;
  std::vector<bool> gd_failure_;
  std::vector<bool> nd_new_failure_;
  std::vector<bool> nd_old_failure_;
};

}  // namespace gop::core
