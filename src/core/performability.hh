#pragma once

/// \file performability.hh
/// The paper's primary contribution, as a library: the successive
/// model-translation pipeline that evaluates the performability index
///
///   Y(phi) = (E[WI] - E[W0]) / (E[WI] - E[Wphi]),   E[WI] = 2 theta   (Eq 1)
///
/// by aggregating constituent reward-model solutions of the three SAN models
/// RMGd, RMGp and RMNd (Figure 3):
///
///   E[W0]  = 2 theta P(X''_theta in A''1)                            (Eq 5/14)
///   Y^S1   = ((rho1+rho2) phi + 2(theta-phi))
///            * P(X'_phi in A'1) P(X''_{theta-phi} in A''1)           (Eq 8/14)
///   Y^S2   = gamma ( 2 theta Ih - (2-(rho1+rho2)) Itauh
///                    - 2 theta (Ihf + Ih If) )                       (Eq 15/16/21)
///   E[Wphi] = Y^S1 + Y^S2                                            (Eq 6)
///
/// The analyzer builds the three SANs once per parameter set (they do not
/// depend on phi), generates their state spaces, computes the steady-state
/// overheads rho1/rho2, and then evaluates Y(phi) with a handful of transient
/// and accumulated reward solutions per phi.

#include <optional>
#include <span>
#include <vector>

#include "core/gamma.hh"
#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "lint/finding.hh"
#include "markov/accumulated.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "san/state_space.hh"

namespace gop::core {

/// The constituent reward variables of Figure 3 at a given phi.
struct ConstituentMeasures {
  double p_a1_phi = 0.0;       ///< P(X'_phi in A'1)            [RMGd, instant at phi]
  double i_h = 0.0;            ///< \int_0^phi h                [RMGd, instant at phi]
  double i_tau_h = 0.0;        ///< \int_0^phi tau h            [RMGd, accumulated over [0,phi]]
  double i_hf = 0.0;           ///< \int_0^phi\int_tau^phi h f  [RMGd, instant at phi]
  /// The *literal* \int_0^phi tau h(tau) dtau = E[tau 1(detected by phi)],
  /// via integration by parts on the detection-time CDF. The paper's Table 1
  /// specifies the censored variant `i_tau_h` instead (which is what makes
  /// the published curves come out); both are exposed so the difference can
  /// be studied (gamma-policy ablation).
  double i_tau_h_literal = 0.0;
  double rho1 = 1.0;           ///< forward-progress fraction of P1new [RMGp, steady state]
  double rho2 = 1.0;           ///< forward-progress fraction of P2    [RMGp, steady state]
  double p_nd_theta = 0.0;     ///< P(X''_theta in A''1), mu_new       [RMNd]
  double p_nd_rest = 0.0;      ///< P(X''_{theta-phi} in A''1), mu_new [RMNd]
  double i_f = 0.0;            ///< \int_phi^theta f, mu_old           [RMNd]
};

struct PerformabilityResult {
  double phi = 0.0;
  ConstituentMeasures measures;

  double e_wi = 0.0;    ///< E[WI] = 2 theta
  double e_w0 = 0.0;    ///< E[W0]
  double e_wphi = 0.0;  ///< E[Wphi] = Y^S1 + Y^S2
  double y_s1 = 0.0;
  double y_s2 = 0.0;
  double gamma = 1.0;
  /// Upper bound on Eq 19's neglected subtrahend (0 unless the option to
  /// restore it is enabled; see AnalyzerOptions::include_neglected_term).
  double neglected_term = 0.0;
  double y = 1.0;  ///< the performability index
};

struct AnalyzerOptions {
  GammaPolicy gamma_policy = GammaPolicy::kPaperLinear;
  double constant_gamma = 0.9;

  /// Restores (an upper bound on) the subtrahend the paper drops in Eq 19:
  /// (2-(rho1+rho2)) \int\int tau h f, bounded by
  /// (2-(rho1+rho2)) (phi Ihf + Itauh If). Used by the ablation bench.
  bool include_neglected_term = false;

  /// Overrides for the RMGp-derived overheads (the paper's Figures 10/11
  /// label curves by (rho1, rho2) directly).
  std::optional<double> override_rho1;
  std::optional<double> override_rho2;

  /// Runs the gop::lint battery as a gate: the structural checks (model,
  /// chain, reward) once at construction, and the solver preflight on every
  /// evaluate()/evaluate_batch()/constituents() grid. Error-severity findings
  /// raise gop::ModelError carrying the report — a diagnostic up front
  /// instead of NaNs or a throw from deep inside a solver. Warnings and info
  /// findings never block; read them via lint_report().
  bool preflight = false;

  markov::TransientOptions transient;
  markov::AccumulatedOptions accumulated;
  markov::SteadyStateOptions steady_state;
};

class PerformabilityAnalyzer {
 public:
  explicit PerformabilityAnalyzer(const GsuParameters& params, AnalyzerOptions options = {});

  // The generated chains hold pointers into the model members, so the
  // analyzer is neither copyable nor movable.
  PerformabilityAnalyzer(const PerformabilityAnalyzer&) = delete;
  PerformabilityAnalyzer& operator=(const PerformabilityAnalyzer&) = delete;

  const GsuParameters& parameters() const { return params_; }
  const AnalyzerOptions& options() const { return options_; }

  /// Steady-state forward-progress fractions (after overrides).
  double rho1() const { return rho1_; }
  double rho2() const { return rho2_; }

  /// Solves all constituent measures at phi (0 <= phi <= theta).
  ///
  /// Thread safety: `constituents` and `evaluate` are safe to call from
  /// multiple threads concurrently on the same analyzer. All phi-independent
  /// quantities (the SAN models, generated chains, rho1/rho2, p_nd_theta) are
  /// computed once in the constructor and only read afterwards; there are no
  /// mutable members or lazy caches, and every per-call solver (transient,
  /// accumulated, uniformization) works in per-call/per-workspace buffers.
  /// The parallel sweep layer (core/sweep.hh) relies on this contract — any
  /// future caching added here must be per-call or synchronized.
  ConstituentMeasures constituents(double phi) const;

  /// Solves the constituent measures for a whole batch of phi points through
  /// per-chain solver sessions (san::ChainSession): each of the four chain
  /// solves (RMGd transient, RMGd accumulated, RMNd-new, RMNd-old) covers the
  /// entire grid in one session instead of one solver run per (point,
  /// measure). `phis` may be in any order; results come back in input order.
  ///
  /// Determinism contract: the result at every phi is bit-identical to
  /// constituents(phi), at every `threads` value (sessions replay the
  /// pointwise solver loops exactly; see docs/solver-architecture.md).
  /// `threads` = 1 runs serially, 0 picks par::default_thread_count();
  /// parallelism is across the four chain solves and across grid segments,
  /// never within a solve.
  std::vector<ConstituentMeasures> constituents_batch(std::span<const double> phis,
                                                      size_t threads = 1) const;

  /// Evaluates the performability index and its intermediate quantities.
  /// Thread-safe; see constituents().
  PerformabilityResult evaluate(double phi) const;

  /// evaluate() for a batch of phi points on top of constituents_batch();
  /// bit-identical to calling evaluate(phi) per point, at every thread count.
  std::vector<PerformabilityResult> evaluate_batch(std::span<const double> phis,
                                                   size_t threads = 1) const;

  /// The full static-analysis battery (see docs/static-analysis.md) over the
  /// four constituent models/chains, their reward structures, and the solver
  /// grids a sweep over `phis` would run: RMGd transient+accumulated at phi,
  /// RMNd transient at theta-phi and theta, RMGp steady state. Pass an empty
  /// span to check only the phi-independent parts. Never throws on findings;
  /// callers decide what severity gates.
  lint::Report lint_report(std::span<const double> phis = {}) const;

  /// Underlying models and chains, for diagnostics, benches and tests.
  const RmGd& rm_gd() const { return gd_; }
  const RmGp& rm_gp() const { return gp_; }
  const RmNd& rm_nd_new() const { return nd_new_; }
  const RmNd& rm_nd_old() const { return nd_old_; }
  const san::GeneratedChain& gd_chain() const { return gd_chain_; }
  const san::GeneratedChain& gp_chain() const { return gp_chain_; }
  const san::GeneratedChain& nd_new_chain() const { return nd_new_chain_; }
  const san::GeneratedChain& nd_old_chain() const { return nd_old_chain_; }

 private:
  /// Scalar assembly of Eq 1/6/8/14/15/16/21 from already-solved measures;
  /// the shared back half of evaluate() and evaluate_batch().
  PerformabilityResult assemble(double phi, const ConstituentMeasures& measures) const;

  /// The phi-independent half of lint_report(): model, chain and reward
  /// checks plus the RMGp steady-state preflight.
  lint::Report structural_report() const;

  /// The per-grid half of lint_report(): transient/accumulated preflight for
  /// the solver grids a sweep over `phis` runs.
  lint::Report grid_report(std::span<const double> phis) const;

  GsuParameters params_;
  AnalyzerOptions options_;

  RmGd gd_;
  RmGp gp_;
  RmNd nd_new_;
  RmNd nd_old_;

  san::GeneratedChain gd_chain_;
  san::GeneratedChain gp_chain_;
  san::GeneratedChain nd_new_chain_;
  san::GeneratedChain nd_old_chain_;

  double rho1_ = 1.0;
  double rho2_ = 1.0;
  double p_nd_theta_ = 0.0;  // P(X''_theta in A''1) with mu_new, cached
};

}  // namespace gop::core
