#pragma once

/// \file gamma.hh
/// Policies for the discount factor gamma of Eq (4) — the extra mission-worth
/// reduction attached to an unsuccessful-but-safe upgrade. The paper (§6)
/// uses gamma = 1 - tau/theta with tau "the mean time to error detection";
/// reproducing the published curves requires reading tau as the Table-1
/// accumulated reward Itauh (the censored variant). The alternatives exist
/// for the ablation bench and for users who want a different convention.

#include "util/error.hh"

namespace gop::core {

enum class GammaPolicy {
  /// The paper's choice: gamma = 1 - Itauh/theta with the Table-1 Itauh
  /// (clamped to [0, 1]).
  kPaperLinear,
  /// Same linear rule but with the *literal* \int tau h(tau) dtau
  /// (unconditional mean detection time). Shown by the ablation to produce
  /// much larger Y than the published figures — evidence the paper used the
  /// Table-1 convention.
  kLiteralLinear,
  /// A fixed discount, ignoring the detection time.
  kConstant,
  /// gamma = 1 - E[tau | detected]/theta: discounts by the mean detection
  /// time conditioned on detection, clamped to [0, 1].
  kConditionalMean,
};

struct GammaInputs {
  double i_tau_h = 0.0;          ///< Table-1 accumulated reward over [0, phi]
  double i_tau_h_literal = 0.0;  ///< literal E[tau 1(detected by phi)]
  double i_h = 0.0;              ///< P(detected & alive at phi)
  double p_detected = 0.0;       ///< P(detected by phi) = Ih + Ihf
  double theta = 1.0;
};

/// Evaluates the policy; `constant_gamma` is used only by kConstant.
double evaluate_gamma(GammaPolicy policy, const GammaInputs& inputs, double constant_gamma);

/// Human-readable policy name for bench output.
const char* gamma_policy_name(GammaPolicy policy);

}  // namespace gop::core
