#include "core/rm_nd.hh"

#include "san/expr.hh"
#include "util/error.hh"

namespace gop::core {

using namespace gop::san;

RmNd build_rm_nd(const GsuParameters& params, double mu_1) {
  params.validate();
  GOP_REQUIRE(mu_1 > 0.0, "mu_1 must be positive");

  RmNd rm{SanModel("RMNd"), {}, {}, {}};
  SanModel& m = rm.model;

  rm.p1_ctn = m.add_place("P1ctn");
  rm.p2_ctn = m.add_place("P2ctn");
  rm.failure = m.add_place("failure");

  const Predicate alive = mark_eq(rm.failure, 0);

  m.add_timed_activity("P1fm", all_of({alive, mark_eq(rm.p1_ctn, 0)}), constant_rate(mu_1),
                       set_mark(rm.p1_ctn, 1));
  m.add_timed_activity("P2fm", all_of({alive, mark_eq(rm.p2_ctn, 0)}),
                       constant_rate(params.mu_old), set_mark(rm.p2_ctn, 1));

  // Message passing: an external message from a contaminated process is an
  // undetected erroneous external message (no AT under the normal mode) and
  // fails the system; an internal one propagates the contamination.
  {
    TimedActivity activity;
    activity.name = "P1msg";
    activity.enabled = alive;
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext),
                                  when(mark_eq(rm.p1_ctn, 1), set_mark(rm.failure, 1))});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext),
                                  when(mark_eq(rm.p1_ctn, 1), set_mark(rm.p2_ctn, 1))});
    m.add_timed_activity(std::move(activity));
  }
  {
    TimedActivity activity;
    activity.name = "P2msg";
    activity.enabled = alive;
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.failure, 1))});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext),
                                  when(mark_eq(rm.p2_ctn, 1), set_mark(rm.p1_ctn, 1))});
    m.add_timed_activity(std::move(activity));
  }

  return rm;
}

san::RewardStructure RmNd::reward_no_failure() const {
  RewardStructure reward("no_failure");
  reward.add(mark_eq(failure, 0), 1.0);
  return reward;
}

}  // namespace gop::core
