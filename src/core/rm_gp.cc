#include "core/rm_gp.hh"

#include "san/expr.hh"
#include "san/phase_type.hh"
#include "util/error.hh"

namespace gop::core {

using namespace gop::san;

RmGp build_rm_gp(const GsuParameters& params, const RmGpOptions& options) {
  params.validate();
  GOP_REQUIRE(options.duration_stages >= 1, "duration_stages must be >= 1");

  RmGp rm{SanModel("RMGp"), {}, {}, {}, {}, {}, {}};
  SanModel& m = rm.model;

  rm.p1n_ext = m.add_place("P1nExt");
  rm.p1n_int = m.add_place("P1nInt");
  rm.p2_ext = m.add_place("P2Ext");
  rm.p2_int = m.add_place("P2Int");
  rm.p2_db = m.add_place("P2DB");
  rm.p1o_db = m.add_place("P1oDB");

  // A successful AT re-establishes confidence in the passive pair's states
  // (RMGd's shared dirty_bit reset).
  const Effect confidence_reset = sequence({set_mark(rm.p2_db, 0), set_mark(rm.p1o_db, 0)});

  // Installs a safeguard "work" activity: exponential at `rate` for the
  // paper's model, Erlang-k with the same mean for the duration-shape
  // ablation (RmGpOptions::duration_stages).
  const auto add_work = [&](const std::string& name, Predicate enabled, double rate,
                            Effect effect) {
    if (options.duration_stages == 1) {
      m.add_timed_activity(name, std::move(enabled), constant_rate(rate), std::move(effect));
    } else {
      add_erlang_activity(m, name, std::move(enabled), rate, options.duration_stages,
                          std::move(effect));
    }
  };

  // --- P1new ------------------------------------------------------------------

  // Message generation while P1new is free.
  {
    TimedActivity activity;
    activity.name = "P1nSend";
    activity.enabled = all_of({mark_eq(rm.p1n_ext, 0), mark_eq(rm.p1n_int, 0)});
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext), set_mark(rm.p1n_ext, 1)});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext), set_mark(rm.p1n_int, 1)});
    m.add_timed_activity(std::move(activity));
  }

  // AT of P1new's external message (P1new is always potentially
  // contaminated during G-OP, so this is unconditional).
  add_work("P1nAT", mark_eq(rm.p1n_ext, 1), params.alpha,
           sequence({set_mark(rm.p1n_ext, 0), confidence_reset}));

  // P2 handles the internal message from P1new: checkpoint when its dirty
  // bit is clear (and P2 is not mid-AT), skip otherwise.
  add_work("P2_CKPT",
           all_of({mark_eq(rm.p1n_int, 1), mark_eq(rm.p2_db, 0), mark_eq(rm.p2_ext, 0)}),
           params.beta, sequence({set_mark(rm.p1n_int, 0), set_mark(rm.p2_db, 1)}));
  m.add_instantaneous_activity("P2SkipCKPT",
                               all_of({mark_eq(rm.p1n_int, 1), mark_eq(rm.p2_db, 1)}),
                               set_mark(rm.p1n_int, 0));

  // --- P2 ---------------------------------------------------------------------

  // Message generation while P2 is free (not in AT, not waiting on P1old's
  // checkpoint, not checkpointing itself).
  {
    TimedActivity activity;
    activity.name = "P2Send";
    activity.enabled = all_of({mark_eq(rm.p2_ext, 0), mark_eq(rm.p2_int, 0),
                               negate(all_of({mark_eq(rm.p1n_int, 1), mark_eq(rm.p2_db, 0)}))});
    activity.rate = constant_rate(params.lambda);
    activity.cases.push_back(Case{constant_prob(params.p_ext), set_mark(rm.p2_ext, 1)});
    activity.cases.push_back(Case{constant_prob(1.0 - params.p_ext), set_mark(rm.p2_int, 1)});
    m.add_timed_activity(std::move(activity));
  }

  // AT of P2's external message, performed only while P2 is considered
  // potentially contaminated.
  add_work("P2AT", all_of({mark_eq(rm.p2_ext, 1), mark_eq(rm.p2_db, 1)}), params.alpha,
           sequence({set_mark(rm.p2_ext, 0), confidence_reset}));
  m.add_instantaneous_activity("P2SkipAT",
                               all_of({mark_eq(rm.p2_ext, 1), mark_eq(rm.p2_db, 0)}),
                               set_mark(rm.p2_ext, 0));

  // --- P1old ------------------------------------------------------------------

  // P1old checkpoints when it receives an internal message from a potentially
  // contaminated P2 and its own dirty bit is clear; otherwise the message is
  // consumed without cost. (P1old's outbound messages are suppressed during
  // G-OP, so no send/AT activities for it.)
  add_work("P1o_CKPT",
           all_of({mark_eq(rm.p2_int, 1), mark_eq(rm.p1o_db, 0), mark_eq(rm.p2_db, 1)}),
           params.beta, sequence({set_mark(rm.p2_int, 0), set_mark(rm.p1o_db, 1)}));
  m.add_instantaneous_activity(
      "P1oSkipCKPT",
      all_of({mark_eq(rm.p2_int, 1),
              any_of({mark_eq(rm.p1o_db, 1), mark_eq(rm.p2_db, 0)})}),
      set_mark(rm.p2_int, 0));

  return rm;
}

san::RewardStructure RmGp::reward_overhead_p1n() const {
  RewardStructure reward("1-rho1");
  reward.add(mark_eq(p1n_ext, 1), 1.0);
  return reward;
}

san::RewardStructure RmGp::reward_overhead_p2() const {
  RewardStructure reward("1-rho2");
  reward.add(any_of({all_of({mark_eq(p1n_int, 1), mark_eq(p2_db, 0)}),
                     all_of({mark_eq(p2_ext, 1), mark_eq(p2_db, 1)})}),
             1.0);
  return reward;
}

}  // namespace gop::core
