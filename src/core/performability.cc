#include "core/performability.hh"

#include <cmath>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::core {

PerformabilityAnalyzer::PerformabilityAnalyzer(const GsuParameters& params,
                                               AnalyzerOptions options)
    : params_(params),
      options_(std::move(options)),
      gd_(build_rm_gd(params_)),
      gp_(build_rm_gp(params_)),
      nd_new_(build_rm_nd(params_, params_.mu_new)),
      nd_old_(build_rm_nd(params_, params_.mu_old)),
      gd_chain_(san::generate_state_space(gd_.model)),
      gp_chain_(san::generate_state_space(gp_.model)),
      nd_new_chain_(san::generate_state_space(nd_new_.model)),
      nd_old_chain_(san::generate_state_space(nd_old_.model)) {
  params_.validate();

  rho1_ = options_.override_rho1.value_or(
      1.0 - gp_chain_.steady_state_reward(gp_.reward_overhead_p1n(), options_.steady_state));
  rho2_ = options_.override_rho2.value_or(
      1.0 - gp_chain_.steady_state_reward(gp_.reward_overhead_p2(), options_.steady_state));
  GOP_CHECK_NUMERIC(rho1_ >= 0.0 && rho1_ <= 1.0, "rho1 outside [0,1]");
  GOP_CHECK_NUMERIC(rho2_ >= 0.0 && rho2_ <= 1.0, "rho2 outside [0,1]");

  p_nd_theta_ =
      nd_new_chain_.instant_reward(nd_new_.reward_no_failure(), params_.theta, options_.transient);
}

ConstituentMeasures PerformabilityAnalyzer::constituents(double phi) const {
  GOP_REQUIRE(phi >= 0.0 && phi <= params_.theta,
              str_format("phi = %g must lie in [0, theta = %g]", phi, params_.theta));

  ConstituentMeasures m;
  m.rho1 = rho1_;
  m.rho2 = rho2_;
  m.p_nd_theta = p_nd_theta_;

  // RMGd measures (Table 1).
  m.p_a1_phi = gd_chain_.instant_reward(gd_.reward_p_a1(), phi, options_.transient);
  m.i_h = gd_chain_.instant_reward(gd_.reward_ih(), phi, options_.transient);
  m.i_hf = gd_chain_.instant_reward(gd_.reward_ihf(), phi, options_.transient);
  m.i_tau_h = gd_chain_.accumulated_reward(gd_.reward_itauh(), phi, options_.accumulated);

  // Literal E[tau 1(detected by phi)] by parts on the detection-time CDF:
  // phi * P(detected at phi) - \int_0^phi P(detected at t) dt.
  const double p_detected =
      gd_chain_.instant_reward(gd_.reward_detected(), phi, options_.transient);
  const double detected_area =
      gd_chain_.accumulated_reward(gd_.reward_detected(), phi, options_.accumulated);
  m.i_tau_h_literal = phi * p_detected - detected_area;

  // RMNd measures (§5.2.3). The V_[phi,theta] ~ V_[0,theta-phi] time shift of
  // §4.1 turns both into instant-of-time rewards at theta - phi.
  const double rest = params_.theta - phi;
  m.p_nd_rest =
      nd_new_chain_.instant_reward(nd_new_.reward_no_failure(), rest, options_.transient);
  m.i_f =
      1.0 - nd_old_chain_.instant_reward(nd_old_.reward_no_failure(), rest, options_.transient);

  return m;
}

PerformabilityResult PerformabilityAnalyzer::evaluate(double phi) const {
  PerformabilityResult r;
  r.phi = phi;
  r.measures = constituents(phi);
  const ConstituentMeasures& m = r.measures;

  const double theta = params_.theta;
  const double rho_sum = m.rho1 + m.rho2;

  r.e_wi = 2.0 * theta;                 // Eq 2
  r.e_w0 = 2.0 * theta * m.p_nd_theta;  // Eq 5/14

  // Y^S1 (Eq 8 with the Eq 14 product form). At phi = 0 the product collapses
  // to P(X''_theta in A''1) and Y^S1 coincides with E[W0].
  const double p_s1 = phi > 0.0 ? m.p_a1_phi * m.p_nd_rest : m.p_nd_theta;
  r.y_s1 = (rho_sum * phi + 2.0 * (theta - phi)) * p_s1;

  // Y^S2 (Eq 15 with the Eq 16 minuend and Eq 21 subtrahend).
  r.gamma = evaluate_gamma(
      options_.gamma_policy,
      GammaInputs{m.i_tau_h, m.i_tau_h_literal, m.i_h, m.i_h + m.i_hf, theta},
      options_.constant_gamma);
  const double minuend = 2.0 * theta * m.i_h - (2.0 - rho_sum) * m.i_tau_h;
  double subtrahend = 2.0 * theta * (m.i_hf + m.i_h * m.i_f);
  if (options_.include_neglected_term) {
    // Upper bound on the Eq 19 dropped term (see AnalyzerOptions).
    r.neglected_term = (2.0 - rho_sum) * (phi * m.i_hf + m.i_tau_h * m.i_f);
    subtrahend += r.neglected_term;
  }
  r.y_s2 = r.gamma * (minuend - subtrahend);

  r.e_wphi = r.y_s1 + r.y_s2;  // Eq 6

  const double denominator = r.e_wi - r.e_wphi;
  GOP_CHECK_NUMERIC(denominator > 0.0,
                    "E[WI] - E[Wphi] is not positive; the model left its supported regime");
  r.y = (r.e_wi - r.e_w0) / denominator;  // Eq 1
  return r;
}

}  // namespace gop::core
