#include "core/performability.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "lint/lint.hh"
#include "obs/span.hh"
#include "par/parallel_for.hh"
#include "san/session.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::core {

PerformabilityAnalyzer::PerformabilityAnalyzer(const GsuParameters& params,
                                               AnalyzerOptions options)
    : params_(params),
      options_(std::move(options)),
      gd_(build_rm_gd(params_)),
      gp_(build_rm_gp(params_)),
      nd_new_(build_rm_nd(params_, params_.mu_new)),
      nd_old_(build_rm_nd(params_, params_.mu_old)),
      gd_chain_(san::generate_state_space(gd_.model)),
      gp_chain_(san::generate_state_space(gp_.model)),
      nd_new_chain_(san::generate_state_space(nd_new_.model)),
      nd_old_chain_(san::generate_state_space(nd_old_.model)) {
  GOP_OBS_SPAN("core.analyzer_construction");
  params_.validate();

  // The structural half of the lint gate runs once, before the first solve:
  // a malformed constituent model fails here with a findings report instead
  // of a throw (or NaN) from inside a steady-state or transient solver.
  if (options_.preflight) {
    structural_report().throw_if_errors("PerformabilityAnalyzer preflight");
  }

  rho1_ = options_.override_rho1.value_or(
      1.0 - gp_chain_.steady_state_reward(gp_.reward_overhead_p1n(), options_.steady_state));
  rho2_ = options_.override_rho2.value_or(
      1.0 - gp_chain_.steady_state_reward(gp_.reward_overhead_p2(), options_.steady_state));
  GOP_CHECK_NUMERIC(rho1_ >= 0.0 && rho1_ <= 1.0, "rho1 outside [0,1]");
  GOP_CHECK_NUMERIC(rho2_ >= 0.0 && rho2_ <= 1.0, "rho2 outside [0,1]");

  p_nd_theta_ =
      nd_new_chain_.instant_reward(nd_new_.reward_no_failure(), params_.theta, options_.transient);
}

ConstituentMeasures PerformabilityAnalyzer::constituents(double phi) const {
  // A one-point batch: the four chain solves at this phi are shared across
  // every measure that reads them (one RMGd distribution serves p_a1, Ih, Ihf
  // and the detection probability instead of four independent solves).
  return constituents_batch(std::span<const double>(&phi, 1), 1).front();
}

std::vector<ConstituentMeasures> PerformabilityAnalyzer::constituents_batch(
    std::span<const double> phis, size_t threads) const {
  GOP_OBS_SPAN("core.constituents_batch");
  const size_t n = phis.size();
  std::vector<ConstituentMeasures> out(n);
  if (n == 0) return out;
  if (options_.preflight) {
    grid_report(phis).throw_if_errors("PerformabilityAnalyzer preflight");
  }
  for (double phi : phis) {
    GOP_REQUIRE(phi >= 0.0 && phi <= params_.theta,
                str_format("phi = %g must lie in [0, theta = %g]", phi, params_.theta));
  }

  // Sessions want sorted grids; accept any input order and scatter back.
  // RMGd solves at phi; the RMNd models solve at theta - phi (the §4.1 time
  // shift), so their sorted grid is the gd grid walked backwards.
  std::vector<size_t> gd_order(n);
  std::iota(gd_order.begin(), gd_order.end(), size_t{0});
  std::stable_sort(gd_order.begin(), gd_order.end(),
                   [&phis](size_t a, size_t b) { return phis[a] < phis[b]; });
  std::vector<double> gd_times(n), nd_times(n);
  std::vector<size_t> nd_order(n);
  for (size_t j = 0; j < n; ++j) gd_times[j] = phis[gd_order[j]];
  for (size_t j = 0; j < n; ++j) {
    nd_order[j] = gd_order[n - 1 - j];
    nd_times[j] = params_.theta - phis[nd_order[j]];
  }

  // Work units: four chain solves (RMGd transient, RMGd accumulated, RMNd-new,
  // RMNd-old) times `segments` contiguous grid slices. Segmentation only adds
  // parallelism beyond four threads — every slice solves its points exactly as
  // a whole-grid session would, so the values do not depend on the split.
  const size_t requested = threads > 0 ? threads : par::default_thread_count();
  const size_t segments = std::max<size_t>(1, std::min((requested + 3) / 4, n));
  std::vector<size_t> bounds(segments + 1);
  for (size_t s = 0; s <= segments; ++s) bounds[s] = s * n / segments;

  const auto slice = [&bounds](const std::vector<double>& times, size_t s) {
    return std::vector<double>(times.begin() + static_cast<ptrdiff_t>(bounds[s]),
                               times.begin() + static_cast<ptrdiff_t>(bounds[s + 1]));
  };
  san::GridSolveOptions transient_only;
  transient_only.transient_options = options_.transient;
  san::GridSolveOptions accumulated_only;
  accumulated_only.transient = false;
  accumulated_only.accumulated = true;
  accumulated_only.accumulated_options = options_.accumulated;

  std::vector<std::optional<san::ChainSession>> sessions(4 * segments);
  par::parallel_for(
      4 * segments, 1,
      [&](size_t task) {
        const size_t chain = task / segments;
        const size_t s = task % segments;
        switch (chain) {
          case 0:
            sessions[task].emplace(gd_chain_.solve_grid(slice(gd_times, s), transient_only));
            break;
          case 1:
            sessions[task].emplace(gd_chain_.solve_grid(slice(gd_times, s), accumulated_only));
            break;
          case 2:
            sessions[task].emplace(nd_new_chain_.solve_grid(slice(nd_times, s), transient_only));
            break;
          default:
            sessions[task].emplace(nd_old_chain_.solve_grid(slice(nd_times, s), transient_only));
            break;
        }
      },
      std::min(requested, 4 * segments));

  // Serial in-order extraction and scatter through the sort permutations.
  for (size_t s = 0; s < segments; ++s) {
    const san::ChainSession& gd_transient = *sessions[0 * segments + s];
    const san::ChainSession& gd_accumulated = *sessions[1 * segments + s];
    const san::ChainSession& nd_new = *sessions[2 * segments + s];
    const san::ChainSession& nd_old = *sessions[3 * segments + s];

    // RMGd measures (Table 1), one series per reward structure against the
    // shared slice solutions.
    const std::vector<double> p_a1 = gd_transient.instant_reward_series(gd_.reward_p_a1());
    const std::vector<double> i_h = gd_transient.instant_reward_series(gd_.reward_ih());
    const std::vector<double> i_hf = gd_transient.instant_reward_series(gd_.reward_ihf());
    const std::vector<double> p_detected =
        gd_transient.instant_reward_series(gd_.reward_detected());
    const std::vector<double> i_tau_h =
        gd_accumulated.accumulated_reward_series(gd_.reward_itauh());
    const std::vector<double> detected_area =
        gd_accumulated.accumulated_reward_series(gd_.reward_detected());
    // RMNd measures (§5.2.3) at theta - phi.
    const std::vector<double> p_nd = nd_new.instant_reward_series(nd_new_.reward_no_failure());
    const std::vector<double> no_failure_old =
        nd_old.instant_reward_series(nd_old_.reward_no_failure());

    for (size_t j = 0; j < bounds[s + 1] - bounds[s]; ++j) {
      const size_t g = bounds[s] + j;
      ConstituentMeasures& m = out[gd_order[g]];
      m.rho1 = rho1_;
      m.rho2 = rho2_;
      m.p_nd_theta = p_nd_theta_;
      m.p_a1_phi = p_a1[j];
      m.i_h = i_h[j];
      m.i_hf = i_hf[j];
      m.i_tau_h = i_tau_h[j];
      // Literal E[tau 1(detected by phi)] by parts on the detection-time CDF:
      // phi * P(detected at phi) - \int_0^phi P(detected at t) dt.
      m.i_tau_h_literal = gd_times[g] * p_detected[j] - detected_area[j];

      ConstituentMeasures& nd_m = out[nd_order[g]];
      nd_m.p_nd_rest = p_nd[j];
      nd_m.i_f = 1.0 - no_failure_old[j];
    }
  }
  return out;
}

PerformabilityResult PerformabilityAnalyzer::evaluate(double phi) const {
  return assemble(phi, constituents(phi));
}

lint::Report PerformabilityAnalyzer::lint_report(std::span<const double> phis) const {
  lint::Report report = structural_report();
  report.merge(grid_report(phis));
  return report;
}

lint::Report PerformabilityAnalyzer::structural_report() const {
  lint::Report report;

  report.merge(lint::lint_model(gd_.model));
  report.merge(lint::lint_model(gp_.model));
  report.merge(lint::lint_model(nd_new_.model));
  report.merge(lint::lint_model(nd_old_.model));

  report.merge(lint::lint_chain(gd_chain_));
  report.merge(lint::lint_chain(gp_chain_));
  report.merge(lint::lint_chain(nd_new_chain_));
  report.merge(lint::lint_chain(nd_old_chain_));

  for (const san::RewardStructure& reward :
       {gd_.reward_p_a1(), gd_.reward_ih(), gd_.reward_ihf(), gd_.reward_itauh(),
        gd_.reward_detected()}) {
    report.merge(lint::lint_reward(gd_chain_, reward));
  }
  for (const san::RewardStructure& reward : {gp_.reward_overhead_p1n(), gp_.reward_overhead_p2()}) {
    report.merge(lint::lint_reward(gp_chain_, reward));
  }
  report.merge(lint::lint_reward(nd_new_chain_, nd_new_.reward_no_failure()));
  report.merge(lint::lint_reward(nd_old_chain_, nd_old_.reward_no_failure()));

  // rho1/rho2 come from an RMGp steady-state solve (unless overridden).
  if (!options_.override_rho1 || !options_.override_rho2) {
    report.merge(lint::preflight_steady_state(gp_chain_.ctmc(), options_.steady_state,
                                              gp_.model.name()));
  }

  // P(X''_theta in A''1) comes from an RMNd-new transient solve at theta,
  // run once by the constructor itself.
  const double theta = params_.theta;
  report.merge(lint::preflight_transient(nd_new_chain_.ctmc(),
                                         std::span<const double>(&theta, 1), options_.transient,
                                         nd_new_.model.name()));
  return report;
}

lint::Report PerformabilityAnalyzer::grid_report(std::span<const double> phis) const {
  lint::Report report;
  if (phis.empty()) return report;

  // The grids constituents_batch() actually solves: RMGd transient and
  // accumulated at phi, the RMNd chains transient at theta - phi (plus theta
  // for the constructor's P(X''_theta in A''1) solve).
  std::vector<double> gd_times(phis.begin(), phis.end());
  std::vector<double> nd_times;
  nd_times.reserve(phis.size() + 1);
  for (double phi : phis) nd_times.push_back(params_.theta - phi);
  nd_times.push_back(params_.theta);

  report.merge(lint::preflight_transient(gd_chain_.ctmc(), gd_times, options_.transient,
                                         gd_.model.name()));
  report.merge(lint::preflight_accumulated(gd_chain_.ctmc(), gd_times, options_.accumulated,
                                           gd_.model.name()));
  report.merge(lint::preflight_transient(nd_new_chain_.ctmc(), nd_times, options_.transient,
                                         nd_new_.model.name()));
  report.merge(lint::preflight_transient(nd_old_chain_.ctmc(), nd_times, options_.transient,
                                         nd_old_.model.name()));
  return report;
}

std::vector<PerformabilityResult> PerformabilityAnalyzer::evaluate_batch(
    std::span<const double> phis, size_t threads) const {
  GOP_OBS_SPAN("core.evaluate_batch");
  const std::vector<ConstituentMeasures> measures = constituents_batch(phis, threads);
  std::vector<PerformabilityResult> results;
  results.reserve(phis.size());
  for (size_t i = 0; i < phis.size(); ++i) results.push_back(assemble(phis[i], measures[i]));
  return results;
}

PerformabilityResult PerformabilityAnalyzer::assemble(double phi,
                                                      const ConstituentMeasures& m) const {
  PerformabilityResult r;
  r.phi = phi;
  r.measures = m;

  const double theta = params_.theta;
  const double rho_sum = m.rho1 + m.rho2;

  r.e_wi = 2.0 * theta;                 // Eq 2
  r.e_w0 = 2.0 * theta * m.p_nd_theta;  // Eq 5/14

  // Y^S1 (Eq 8 with the Eq 14 product form). At phi = 0 the product collapses
  // to P(X''_theta in A''1) and Y^S1 coincides with E[W0].
  const double p_s1 = phi > 0.0 ? m.p_a1_phi * m.p_nd_rest : m.p_nd_theta;
  r.y_s1 = (rho_sum * phi + 2.0 * (theta - phi)) * p_s1;

  // Y^S2 (Eq 15 with the Eq 16 minuend and Eq 21 subtrahend).
  r.gamma = evaluate_gamma(
      options_.gamma_policy,
      GammaInputs{m.i_tau_h, m.i_tau_h_literal, m.i_h, m.i_h + m.i_hf, theta},
      options_.constant_gamma);
  const double minuend = 2.0 * theta * m.i_h - (2.0 - rho_sum) * m.i_tau_h;
  double subtrahend = 2.0 * theta * (m.i_hf + m.i_h * m.i_f);
  if (options_.include_neglected_term) {
    // Upper bound on the Eq 19 dropped term (see AnalyzerOptions).
    r.neglected_term = (2.0 - rho_sum) * (phi * m.i_hf + m.i_tau_h * m.i_f);
    subtrahend += r.neglected_term;
  }
  r.y_s2 = r.gamma * (minuend - subtrahend);

  r.e_wphi = r.y_s1 + r.y_s2;  // Eq 6

  const double denominator = r.e_wi - r.e_wphi;
  GOP_CHECK_NUMERIC(denominator > 0.0,
                    "E[WI] - E[Wphi] is not positive; the model left its supported regime");
  r.y = (r.e_wi - r.e_w0) / denominator;  // Eq 1
  return r;
}

}  // namespace gop::core
