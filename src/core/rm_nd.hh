#pragma once

/// \file rm_nd.hh
/// RMNd — the SAN reward model of system behaviour under the normal mode
/// (the paper's Figure 8): two active processes, no safeguard activities, an
/// erroneous external message fails the system outright.
///
/// It represents the stochastic process X'' of §4.1 and serves three
/// constituent measures (§5.2.3), all with the single predicate-rate pair
/// MARK(failure)==0 -> 1:
///  - P(X''_theta in A''_1)        with mu_1 = mu_new  (E[W0], Eq 5/14);
///  - P(X''_{theta-phi} in A''_1)  with mu_1 = mu_new  (Y^S1, Eq 8/14);
///  - \int_phi^theta f dx = 1 - (instant reward at theta-phi)
///                                 with mu_1 = mu_old  (Y^S2, Eq 21).

#include "core/params.hh"
#include "san/model.hh"
#include "san/reward.hh"

namespace gop::core {

struct RmNd {
  san::SanModel model;

  san::PlaceRef p1_ctn;   // P1Nctn (or P1Octn for the recovered system)
  san::PlaceRef p2_ctn;   // P2ctn
  san::PlaceRef failure;  // failure (absorbing)

  /// MARK(failure)==0 -> 1 (the §5.2.3 reward structure).
  san::RewardStructure reward_no_failure() const;
};

/// Builds RMNd with fault-manifestation rate `mu_1` for the first software
/// component (mu_new for the upgraded system, mu_old for the recovered one);
/// the second component always manifests at params.mu_old.
RmNd build_rm_nd(const GsuParameters& params, double mu_1);

}  // namespace gop::core
