#include "core/params.hh"

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::core {

GsuParameters GsuParameters::table3() {
  return GsuParameters{};  // defaults are exactly Table 3
}

GsuParameters GsuParameters::scaled_mission(double compression) {
  GOP_REQUIRE(compression >= 1.0, "compression must be >= 1");
  GsuParameters params = table3();
  params.theta /= compression;
  params.mu_new *= compression;
  params.mu_old *= compression;
  return params;
}

void GsuParameters::validate() const {
  GOP_REQUIRE(theta > 0.0, "theta must be positive");
  GOP_REQUIRE(lambda > 0.0, "lambda must be positive");
  GOP_REQUIRE(mu_new > 0.0, "mu_new must be positive");
  GOP_REQUIRE(mu_old > 0.0, "mu_old must be positive");
  GOP_REQUIRE(coverage >= 0.0 && coverage <= 1.0, "coverage must be in [0,1]");
  GOP_REQUIRE(p_ext > 0.0 && p_ext <= 1.0, "p_ext must be in (0,1]");
  GOP_REQUIRE(alpha > 0.0, "alpha must be positive");
  GOP_REQUIRE(beta > 0.0, "beta must be positive");
}

std::string GsuParameters::to_string() const {
  return str_format(
      "theta=%g lambda=%g mu_new=%g mu_old=%g c=%g p_ext=%g alpha=%g beta=%g", theta, lambda,
      mu_new, mu_old, coverage, p_ext, alpha, beta);
}

}  // namespace gop::core
