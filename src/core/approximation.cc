#include "core/approximation.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gop::core {

double approximate_rho1(const GsuParameters& params) {
  params.validate();
  return 1.0 - params.lambda * params.p_ext / params.alpha;
}

double approximate_rho2(const GsuParameters& params) {
  params.validate();
  // Renewal cycle of P2's dirty bit:
  //   clean period ~ Exp(lambda (1-p_ext))   (next internal msg from P1new)
  //   checkpoint   ~ 1/beta
  //   dirty period ~ Exp(2 lambda p_ext)     (first clearing AT completion)
  // P2's own AT work per cycle: it performs the clearing AT in about half
  // the cycles (its externals race P1new's), i.e. ~0.5/alpha expected work.
  const double clean = 1.0 / (params.lambda * (1.0 - params.p_ext));
  const double checkpoint = 1.0 / params.beta;
  const double dirty = 1.0 / (2.0 * params.lambda * params.p_ext);
  const double p2_at_work = 0.5 / params.alpha;
  const double cycle = clean + checkpoint + dirty;
  return 1.0 - (checkpoint + p2_at_work) / cycle;
}

ApproximateResult approximate_y(const GsuParameters& params, double phi, double rho1,
                                double rho2) {
  params.validate();
  GOP_REQUIRE(phi >= 0.0 && phi <= params.theta, "phi must lie in [0, theta]");
  GOP_REQUIRE(rho1 > 0.0 && rho1 <= 1.0 && rho2 > 0.0 && rho2 <= 1.0,
              "rho values must be in (0, 1]");

  const double theta = params.theta;
  const double rho_sum = rho1 + rho2;

  // Verdicts arrive at the message scale, so on the mission scale a G-OP
  // fault resolves immediately: survival is exponential in the total
  // manifestation rate, and detections capture the AT-covered share.
  const double mu_gop = params.mu_new + params.mu_old;
  const double p_a1 = std::exp(-mu_gop * phi);
  const double detected_share = params.coverage * params.mu_new / mu_gop;
  const double i_h = detected_share * (1.0 - p_a1);
  const double i_tau_h = (1.0 - p_a1) / mu_gop;  // censored Table-1 variant
  const double i_f = 1.0 - std::exp(-2.0 * params.mu_old * (theta - phi));

  const auto nd_survival = [&](double mu_1, double t) {
    return std::exp(-(mu_1 + params.mu_old) * t);
  };

  ApproximateResult r;
  r.phi = phi;
  r.e_w0 = 2.0 * theta * nd_survival(params.mu_new, theta);

  const double p_s1 = p_a1 * nd_survival(params.mu_new, theta - phi);
  const double y_s1 = (rho_sum * phi + 2.0 * (theta - phi)) * p_s1;

  r.gamma = std::clamp(1.0 - i_tau_h / theta, 0.0, 1.0);
  const double minuend = 2.0 * theta * i_h - (2.0 - rho_sum) * i_tau_h;
  const double subtrahend = 2.0 * theta * i_h * i_f;  // Ihf ~ 0 at this order
  const double y_s2 = r.gamma * (minuend - subtrahend);

  r.e_wphi = y_s1 + y_s2;
  const double denominator = 2.0 * theta - r.e_wphi;
  GOP_REQUIRE(denominator > 0.0, "approximation left its supported regime");
  r.y = (2.0 * theta - r.e_w0) / denominator;
  return r;
}

}  // namespace gop::core
