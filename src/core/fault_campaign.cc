#include "core/fault_campaign.hh"

#include <cmath>
#include <functional>
#include <new>
#include <utility>

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "linalg/vector_ops.hh"
#include "markov/recovery.hh"
#include "san/state_space.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::core {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string describe(const fi::Trigger& trigger) {
  switch (trigger.mode) {
    case fi::Trigger::Mode::kNever:
      return "never";
    case fi::Trigger::Mode::kOnNth:
      return str_format("on_nth(%llu)", static_cast<unsigned long long>(trigger.n));
    case fi::Trigger::Mode::kEveryK:
      return str_format("every(%llu)", static_cast<unsigned long long>(trigger.n));
    case fi::Trigger::Mode::kProbability:
      return str_format("p(%g)", trigger.probability);
  }
  return "?";
}

/// What one solve of one scenario produced: the scalar reward plus the
/// degradation facts from its certificate.
struct ScenarioRun {
  double value = 0.0;
  bool degraded = false;
  std::string engine;
};

struct Scenario {
  std::string name;
  std::function<ScenarioRun()> run;
};

/// The campaign scenarios cover the three paper models and force each
/// non-default engine at least once, so every injection site lies on the hot
/// path of at least one cell. Model build + state-space generation happen
/// inside run() so the san.state_space site is inside the guarded region.
/// GsuParameters::scaled_mission keeps the time horizons short.
std::vector<Scenario> build_scenarios() {
  const GsuParameters params = GsuParameters::scaled_mission();
  // phi within the compressed mission theta = 100 h; short enough that the
  // uniformization cells stay at a few thousand steps.
  const double phi = 1.0;

  std::vector<Scenario> scenarios;

  scenarios.push_back({"rmgd.transient", [params, phi] {
                         RmGd rm = build_rm_gd(params);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_p_a1());
                         markov::TransientResult res =
                             markov::transient_distribution_checked(chain.ctmc(), phi);
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmgd.accumulated", [params, phi] {
                         RmGd rm = build_rm_gd(params);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_itauh());
                         markov::AccumulatedResult res =
                             markov::accumulated_occupancy_checked(chain.ctmc(), phi);
                         return ScenarioRun{linalg::dot(res.occupancy, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmnd.transient.uniformization", [params, phi] {
                         RmNd rm = build_rm_nd(params, params.mu_new);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_no_failure());
                         markov::TransientOptions options;
                         options.method = markov::TransientMethod::kUniformization;
                         markov::TransientResult res =
                             markov::transient_distribution_checked(chain.ctmc(), phi, options);
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmnd.transient.expm", [params, phi] {
                         RmNd rm = build_rm_nd(params, params.mu_new);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_no_failure());
                         markov::TransientOptions options;
                         options.method = markov::TransientMethod::kMatrixExponential;
                         markov::TransientResult res =
                             markov::transient_distribution_checked(chain.ctmc(), phi, options);
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmnd.accumulated.augmented", [params, phi] {
                         RmNd rm = build_rm_nd(params, params.mu_old);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_no_failure());
                         markov::AccumulatedOptions options;
                         options.method = markov::AccumulatedMethod::kAugmentedExponential;
                         markov::AccumulatedResult res =
                             markov::accumulated_occupancy_checked(chain.ctmc(), phi, options);
                         return ScenarioRun{linalg::dot(res.occupancy, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmnd.transient.krylov", [params, phi] {
                         RmNd rm = build_rm_nd(params, params.mu_new);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_no_failure());
                         markov::TransientOptions options;
                         options.method = markov::TransientMethod::kKrylov;
                         markov::TransientResult res =
                             markov::transient_distribution_checked(chain.ctmc(), phi, options);
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmnd.accumulated.krylov", [params, phi] {
                         RmNd rm = build_rm_nd(params, params.mu_old);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_no_failure());
                         markov::AccumulatedOptions options;
                         options.method = markov::AccumulatedMethod::kKrylov;
                         markov::AccumulatedResult res =
                             markov::accumulated_occupancy_checked(chain.ctmc(), phi, options);
                         return ScenarioRun{linalg::dot(res.occupancy, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmgp.steady", [params] {
                         RmGp rm = build_rm_gp(params);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_overhead_p1n());
                         markov::SteadyStateResult res =
                             markov::steady_state_distribution_checked(chain.ctmc());
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  scenarios.push_back({"rmgp.steady.power", [params] {
                         RmGp rm = build_rm_gp(params);
                         san::GeneratedChain chain = san::generate_state_space(rm.model);
                         const std::vector<double> reward =
                             chain.rate_reward_vector(rm.reward_overhead_p2());
                         markov::SteadyStateOptions options;
                         options.method = markov::SteadyStateMethod::kPower;
                         // A stalled run burns the whole budget on every rung
                         // of the ladder; keep it small so those cells finish
                         // fast. (1e-10 converges well within this budget.)
                         options.tolerance = 1e-10;
                         options.max_iterations = 50'000;
                         markov::SteadyStateResult res =
                             markov::steady_state_distribution_checked(chain.ctmc(), options);
                         return ScenarioRun{linalg::dot(res.distribution, reward),
                                            res.certificate.degraded, res.certificate.engine};
                       }});

  return scenarios;
}

std::vector<fi::Trigger> default_triggers() {
  return {fi::Trigger::on_nth(1), fi::Trigger::every(4), fi::Trigger::with_probability(0.5)};
}

const char* classify(const std::exception& ex) {
  if (dynamic_cast<const SolverError*>(&ex) != nullptr) return "SolverError";
  if (dynamic_cast<const NumericalError*>(&ex) != nullptr) return "NumericalError";
  if (dynamic_cast<const ModelError*>(&ex) != nullptr) return "ModelError";
  if (dynamic_cast<const InvalidArgument*>(&ex) != nullptr) return "InvalidArgument";
  if (dynamic_cast<const InternalError*>(&ex) != nullptr) return "InternalError";
  if (dynamic_cast<const std::bad_alloc*>(&ex) != nullptr) return "bad_alloc";
  return "exception";
}

}  // namespace

const char* to_string(CampaignOutcome outcome) {
  switch (outcome) {
    case CampaignOutcome::kNotTriggered:
      return "not-triggered";
    case CampaignOutcome::kTolerated:
      return "tolerated";
    case CampaignOutcome::kRecovered:
      return "recovered";
    case CampaignOutcome::kStructuredError:
      return "structured-error";
    case CampaignOutcome::kSilentWrong:
      return "SILENT-WRONG";
  }
  return "?";
}

bool CampaignReport::all_safe() const {
  return count(CampaignOutcome::kSilentWrong) == 0;
}

size_t CampaignReport::count(CampaignOutcome outcome) const {
  size_t n = 0;
  for (const CampaignCell& cell : cells) {
    if (cell.outcome == outcome) ++n;
  }
  return n;
}

std::string CampaignReport::to_text() const {
  std::string out = str_format("fault campaign: %zu cells, seed=%llu, tolerance=%g\n",
                               cells.size(), static_cast<unsigned long long>(seed), tolerance);
  for (const CampaignCell& cell : cells) {
    out += str_format("  %-32s %-34s %-12s %-16s hits=%-6llu inj=%-4llu", cell.scenario.c_str(),
                      fi::to_string(cell.site), cell.trigger.c_str(), to_string(cell.outcome),
                      static_cast<unsigned long long>(cell.hits),
                      static_cast<unsigned long long>(cell.injections));
    if (cell.outcome == CampaignOutcome::kStructuredError) {
      out += str_format(" %s", cell.error_type.c_str());
    } else if (cell.injections > 0) {
      out += str_format(" engine=%s rel_err=%.2e", cell.engine.c_str(), cell.rel_error);
    }
    out += '\n';
  }
  out += str_format(
      "  summary: not-triggered=%zu tolerated=%zu recovered=%zu structured-error=%zu "
      "silent-wrong=%zu -> %s\n",
      count(CampaignOutcome::kNotTriggered), count(CampaignOutcome::kTolerated),
      count(CampaignOutcome::kRecovered), count(CampaignOutcome::kStructuredError),
      count(CampaignOutcome::kSilentWrong), all_safe() ? "SAFE" : "UNSAFE");
  return out;
}

std::string CampaignReport::to_json() const {
  std::string out = str_format("{\"seed\":%llu,\"tolerance\":%g,\"all_safe\":%s,\"cells\":[",
                               static_cast<unsigned long long>(seed), tolerance,
                               all_safe() ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CampaignCell& cell = cells[i];
    if (i > 0) out += ',';
    out += str_format(
        "{\"scenario\":\"%s\",\"site\":\"%s\",\"trigger\":\"%s\",\"outcome\":\"%s\","
        "\"hits\":%llu,\"injections\":%llu,\"degraded\":%s,\"engine\":\"%s\","
        "\"rel_error\":%.17g,\"error_type\":\"%s\",\"detail\":\"%s\"}",
        json_escape(cell.scenario).c_str(), fi::to_string(cell.site),
        json_escape(cell.trigger).c_str(), to_string(cell.outcome),
        static_cast<unsigned long long>(cell.hits),
        static_cast<unsigned long long>(cell.injections), cell.degraded ? "true" : "false",
        json_escape(cell.engine).c_str(), cell.rel_error, json_escape(cell.error_type).c_str(),
        json_escape(cell.detail).c_str());
  }
  out += "]}";
  return out;
}

std::vector<std::string> campaign_scenario_names() {
  std::vector<std::string> names;
  for (const Scenario& scenario : build_scenarios()) names.push_back(scenario.name);
  return names;
}

CampaignReport run_fault_campaign(const CampaignOptions& options) {
  const std::vector<Scenario> scenarios = build_scenarios();
  const std::vector<fi::Trigger> triggers =
      options.triggers.empty() ? default_triggers() : options.triggers;

  CampaignReport report;
  report.seed = options.seed;
  report.tolerance = options.tolerance;

  for (const Scenario& scenario : scenarios) {
    // The fault-free baseline; a throw here is a broken scenario, not a
    // campaign finding, so it propagates.
    fi::clear_plan();
    const ScenarioRun baseline = scenario.run();

    for (fi::SiteId site : fi::all_sites()) {
      for (const fi::Trigger& trigger : triggers) {
        CampaignCell cell;
        cell.scenario = scenario.name;
        cell.site = site;
        cell.trigger = describe(trigger);

        fi::Plan plan(options.seed);
        plan.arm(site, trigger);
        try {
          fi::ScopedPlan guard(plan);
          const ScenarioRun run = scenario.run();
          const fi::SiteStats stats = fi::site_stats(site);
          cell.hits = stats.hits;
          cell.injections = stats.injections;
          cell.degraded = run.degraded;
          cell.engine = run.engine;
          cell.rel_error =
              std::abs(run.value - baseline.value) / std::max(1.0, std::abs(baseline.value));
          if (cell.injections == 0) {
            cell.outcome = CampaignOutcome::kNotTriggered;
          } else if (cell.rel_error <= options.tolerance) {
            cell.outcome =
                run.degraded ? CampaignOutcome::kRecovered : CampaignOutcome::kTolerated;
          } else {
            cell.outcome = CampaignOutcome::kSilentWrong;
          }
        } catch (const std::exception& ex) {
          const fi::SiteStats stats = fi::site_stats(site);
          cell.hits = stats.hits;
          cell.injections = stats.injections;
          cell.outcome = CampaignOutcome::kStructuredError;
          cell.error_type = classify(ex);
          cell.detail = ex.what();
        }
        report.cells.push_back(std::move(cell));
      }
    }
  }
  fi::clear_plan();
  return report;
}

}  // namespace gop::core
