// Protocol trace: watch the MDCD protocol run, event by event. Simulates one
// guarded-operation interval with a fault injected early (high mu_new) and
// prints the timeline — message sends elided, safeguard activity and the
// verdict shown. A compact way to *see* the mechanism the paper describes
// in §2 and Figure 2.
//
//   ./build/examples/protocol_trace [--seed=4] [--horizon=2] [--mu_new=2]

#include <cstdio>

#include "mdcd/protocol.hh"
#include "util/cli.hh"

int main(int argc, char** argv) {
  using namespace gop;

  CliFlags flags("protocol_trace", "event-by-event MDCD protocol timeline");
  flags.add_int("seed", 4, "RNG seed")
      .add_double("horizon", 2.0, "guarded-operation hours to simulate")
      .add_double("mu_new", 2.0, "fault rate of the upgraded version (1/h)");
  if (!flags.parse(argc, argv)) return 0;

  core::GsuParameters params = core::GsuParameters::table3();
  params.mu_new = flags.get_double("mu_new");  // high: a verdict within hours

  const char* process_names[] = {"P1new", "P1old", "P2   "};
  size_t sends = 0;
  size_t shown = 0;

  mdcd::ProtocolOptions options;
  options.horizon = flags.get_double("horizon");
  options.trace = [&](double time, mdcd::TraceEvent event, mdcd::ProcessId process) {
    if (event == mdcd::TraceEvent::kSend) {
      ++sends;  // ~2400/h — summarize instead of printing each
      return;
    }
    if (shown < 60 || event == mdcd::TraceEvent::kFault ||
        event == mdcd::TraceEvent::kDetection || event == mdcd::TraceEvent::kFailure) {
      std::printf("%10.6f h  %-6s  %s\n", time, process_names[static_cast<size_t>(process)],
                  mdcd::trace_event_name(event));
      ++shown;
    }
  };

  sim::Rng rng(static_cast<uint64_t>(flags.get_int("seed")));
  std::printf("%-12s  %-6s  %s\n", "time", "proc", "event");
  std::printf("------------  ------  -----------\n");
  const mdcd::RunStats stats = mdcd::run_guarded_operation(params, rng, options);

  std::printf("\nsummary: %zu messages sent, %zu ATs, %zu checkpoints\n", sends, stats.at_count,
              stats.checkpoint_count);
  std::printf("verdict: %s%s at t = %.6f h\n",
              stats.detected ? "detected (safe recovery)" : "",
              stats.in_a4()      ? "FAILED undetected"
              : stats.in_a1()    ? "no error by the horizon"
              : stats.failed     ? " — then failed post-recovery"
                                 : "",
              stats.detected ? stats.detection_time
                             : (stats.failed ? stats.failure_time : options.horizon));
  std::printf("busy fractions: P1new %.4f, P2 %.4f\n",
              1.0 - stats.rho(mdcd::ProcessId::kP1New), 1.0 - stats.rho(mdcd::ProcessId::kP2));
  return 0;
}
