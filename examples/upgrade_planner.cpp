// Upgrade planner: the engineering workflow the paper motivates. Given what
// onboard validation taught you about the new flight-software version
// (mu_new), the mission schedule (theta) and the measured safeguard costs
// (alpha, beta, coverage), decide how long guarded operation should run —
// and whether it is worth running at all.
//
//   ./build/examples/upgrade_planner --mu_new=5e-5 --theta=8000
//   ./build/examples/upgrade_planner --coverage=0.2 --alpha=2500 --beta=2500
//
// Prints the recommended duration, the expected mission-worth ledger at the
// optimum, and a one-factor sensitivity table around the recommendation.

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace {

gop::core::OptimalPhi recommend(const gop::core::GsuParameters& params) {
  const gop::core::PerformabilityAnalyzer analyzer(params);
  gop::core::OptimizeOptions options;
  options.grid_points = 21;
  options.phi_tolerance = 10.0;
  return gop::core::find_optimal_phi(analyzer, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gop;

  CliFlags flags("upgrade_planner", "choose the guarded-operation duration for an onboard upgrade");
  const core::GsuParameters defaults = core::GsuParameters::table3();
  flags.add_double("theta", defaults.theta, "hours until the next scheduled upgrade")
      .add_double("lambda", defaults.lambda, "message-sending rate per process (1/h)")
      .add_double("mu_new", defaults.mu_new, "fault-manifestation rate of the new version (1/h)")
      .add_double("mu_old", defaults.mu_old, "fault-manifestation rate of the old version (1/h)")
      .add_double("coverage", defaults.coverage, "acceptance-test coverage in [0,1]")
      .add_double("p_ext", defaults.p_ext, "probability a message is external")
      .add_double("alpha", defaults.alpha, "acceptance-test completion rate (1/h)")
      .add_double("beta", defaults.beta, "checkpoint completion rate (1/h)");
  if (!flags.parse(argc, argv)) return 0;

  core::GsuParameters params;
  params.theta = flags.get_double("theta");
  params.lambda = flags.get_double("lambda");
  params.mu_new = flags.get_double("mu_new");
  params.mu_old = flags.get_double("mu_old");
  params.coverage = flags.get_double("coverage");
  params.p_ext = flags.get_double("p_ext");
  params.alpha = flags.get_double("alpha");
  params.beta = flags.get_double("beta");
  params.validate();

  core::PerformabilityAnalyzer analyzer(params);
  std::printf("scenario: %s\n", params.to_string().c_str());
  std::printf("safeguard overheads (RMGp): 1-rho1 = %.4f, 1-rho2 = %.4f\n\n",
              1.0 - analyzer.rho1(), 1.0 - analyzer.rho2());

  core::OptimizeOptions optimize;
  optimize.grid_points = 21;
  optimize.phi_tolerance = 10.0;
  const core::OptimalPhi best = core::find_optimal_phi(analyzer, optimize);

  if (!best.beneficial) {
    std::printf(
        "RECOMMENDATION: do NOT use guarded operation (max Y = %.4f <= 1).\n"
        "At this AT coverage/overhead the safeguard costs outweigh the expected\n"
        "failure-induced degradation they avert.\n",
        best.y);
    return 0;
  }

  const core::PerformabilityResult at_best = analyzer.evaluate(best.phi);
  std::printf("RECOMMENDATION: guard the upgrade for ~%.0f hours (Y = %.4f).\n\n", best.phi,
              best.y);
  std::printf("expected mission-worth ledger at phi = %.0f h (ideal = %.0f h):\n", best.phi,
              at_best.e_wi);
  TextTable ledger({"quantity", "hours", "meaning"});
  ledger.begin_row().add("E[W0]").add_double(at_best.e_w0, 6).add(
      "expected worth with no guarded operation");
  ledger.begin_row().add("E[Wphi]").add_double(at_best.e_wphi, 6).add(
      "expected worth with the recommended duration");
  ledger.begin_row()
      .add("degradation avoided")
      .add_double(at_best.e_wphi - at_best.e_w0, 6)
      .add("extra worth bought by guarded operation");
  std::fputs(ledger.to_string().c_str(), stdout);

  // One-factor sensitivity around the recommendation.
  std::printf("\nsensitivity of the recommendation (one factor at a time):\n");
  TextTable sens({"variation", "optimal phi [h]", "max Y"});
  const auto add_row = [&](const char* label, auto mutate) {
    core::GsuParameters varied = params;
    mutate(varied);
    const core::OptimalPhi v = recommend(varied);
    sens.begin_row().add(label).add_double(v.phi, 5).add_double(v.y, 5);
  };
  sens.begin_row().add("baseline").add_double(best.phi, 5).add_double(best.y, 5);
  add_row("mu_new x2", [](core::GsuParameters& p) { p.mu_new *= 2.0; });
  add_row("mu_new /2", [](core::GsuParameters& p) { p.mu_new /= 2.0; });
  add_row("coverage -0.1", [](core::GsuParameters& p) { p.coverage -= 0.1; });
  add_row("alpha,beta /2", [](core::GsuParameters& p) {
    p.alpha /= 2.0;
    p.beta /= 2.0;
  });
  add_row("theta /2", [](core::GsuParameters& p) { p.theta /= 2.0; });
  std::fputs(sens.to_string().c_str(), stdout);
  return 0;
}
