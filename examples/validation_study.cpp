// Validation study: the paper's §7 argues that once a performability measure
// is translated into constituent reward variables, each one can be computed
// by *different* techniques — analytic reward-model solutions, simulation,
// or a hybrid. This example demonstrates exactly that on the Table 3 system:
//
//   - every RMGd/RMNd constituent measure solved numerically AND estimated
//     by simulating the same SAN;
//   - the end-to-end index Y from the translated pipeline vs a Monte Carlo
//     replay of the untranslated Eq-4 formulation.
//
//   ./build/examples/validation_study [--phi_fraction=0.7] [--replications=5000]

#include <cstdio>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "markov/ctmc_sim.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main(int argc, char** argv) {
  using namespace gop;

  CliFlags flags("validation_study",
                 "numerical vs simulation solutions of the constituent measures and Y");
  flags
      .add_double("phi_fraction", 0.7, "guarded-operation duration as a fraction of theta")
      .add_double("compression", 100.0,
                  "mission compression factor (see GsuParameters::scaled_mission)")
      .add_int("replications", 5000, "Monte Carlo replications per estimate");
  if (!flags.parse(argc, argv)) return 0;
  const size_t replications = static_cast<size_t>(flags.get_int("replications"));

  // The Monte Carlo columns run on the mission-compressed Table 3 (see
  // params.hh): all dimensionless quantities of the analysis are preserved,
  // and simulated mission paths become ~compression-times cheaper.
  const core::GsuParameters params =
      core::GsuParameters::scaled_mission(flags.get_double("compression"));
  const double phi = flags.get_double("phi_fraction") * params.theta;
  core::PerformabilityAnalyzer analyzer(params);
  const core::ConstituentMeasures m = analyzer.constituents(phi);

  sim::ReplicationOptions rep;
  rep.seed = 31337;
  rep.min_replications = replications;
  rep.max_replications = replications;

  // --- constituent measures: numeric vs simulation ---------------------------
  // The Monte Carlo side samples trajectories of the generated tangible
  // chains (self-loop-free), so a 10,000-hour mission path costs a handful
  // of exponential draws.
  std::printf("constituent measures at phi = %.0f (mission-compressed Table 3, %s):\n\n", phi,
              params.to_string().c_str());
  const core::RmGd& gd = analyzer.rm_gd();
  const san::GeneratedChain& gd_chain = analyzer.gd_chain();

  TextTable table({"measure", "reward model", "numerical", "simulated", "95% CI"});
  const auto row = [&](const char* name, const char* model, double numeric,
                       const sim::ReplicationResult& estimate) {
    table.begin_row()
        .add(name)
        .add(model)
        .add_double(numeric, 6)
        .add_double(estimate.mean(), 6)
        .add(str_format("+/- %.2g", estimate.half_width()));
  };

  row("P(X'_phi in A'_1)", "RMGd", m.p_a1_phi,
      markov::mc_instant_reward(gd_chain.ctmc(), gd_chain.rate_reward_vector(gd.reward_p_a1()),
                                phi, rep));
  row("Ih", "RMGd", m.i_h,
      markov::mc_instant_reward(gd_chain.ctmc(), gd_chain.rate_reward_vector(gd.reward_ih()),
                                phi, rep));
  row("Ihf", "RMGd", m.i_hf,
      markov::mc_instant_reward(gd_chain.ctmc(), gd_chain.rate_reward_vector(gd.reward_ihf()),
                                phi, rep));
  row("Itauh", "RMGd", m.i_tau_h,
      markov::mc_accumulated_reward(gd_chain.ctmc(),
                                    gd_chain.rate_reward_vector(gd.reward_itauh()), phi, rep));

  const core::RmNd& nd_new = analyzer.rm_nd_new();
  const san::GeneratedChain& nd_chain = analyzer.nd_new_chain();
  row("P(X''_(theta-phi) in A''_1)", "RMNd", m.p_nd_rest,
      markov::mc_instant_reward(nd_chain.ctmc(),
                                nd_chain.rate_reward_vector(nd_new.reward_no_failure()),
                                params.theta - phi, rep));

  std::fputs(table.to_string().c_str(), stdout);

  // --- end-to-end: translated Y vs untranslated Monte Carlo ------------------
  const core::PerformabilityResult translated = analyzer.evaluate(phi);
  core::McOptions mc_options;
  mc_options.replications = rep;
  core::McValidator validator(params, mc_options);
  const core::McPerformability mc =
      validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), translated.gamma);

  std::printf("\nperformability index at phi = %.0f:\n", phi);
  std::printf("  translated reward-model solution : Y = %.4f\n", translated.y);
  std::printf("  untranslated Monte Carlo (Eq 4)  : Y = %.4f  (range [%.4f, %.4f])\n", mc.y,
              mc.y_low, mc.y_high);
  std::printf(
      "\nResidual differences quantify the paper's deliberate approximations\n"
      "(steady-state rho, the Eq 19 dropped term, the Table-1 Itauh convention).\n");
  return 0;
}
