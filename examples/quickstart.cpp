// Quickstart: evaluate the performability index Y(phi) for the paper's
// Table 3 parameter assignment, print the Figure 9 series (mu_new = 1e-4),
// and report the optimal guarded-operation duration.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  // 1. The system parameters (paper Table 3). Tweak any field and rerun.
  core::GsuParameters params = core::GsuParameters::table3();

  // 2. The analyzer builds the three SAN reward models (RMGd, RMGp, RMNd),
  //    generates their state spaces, and computes the steady-state
  //    performance overheads rho1/rho2.
  core::PerformabilityAnalyzer analyzer(params);
  std::printf("parameters: %s\n", params.to_string().c_str());
  std::printf("derived overheads: rho1 = %.4f, rho2 = %.4f\n\n", analyzer.rho1(),
              analyzer.rho2());

  // 3. Sweep the guarded-operation duration phi (Figure 9, solid dots).
  TextTable table({"phi [h]", "Y", "E[W0]", "E[Wphi]", "gamma"});
  for (double phi : core::linspace(0.0, params.theta, 11)) {
    const core::PerformabilityResult r = analyzer.evaluate(phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(r.y, 5)
        .add_double(r.e_w0, 6)
        .add_double(r.e_wphi, 6)
        .add_double(r.gamma, 4);
  }
  std::fputs(table.to_string().c_str(), stdout);

  // 4. Find the optimal duration.
  const core::OptimalPhi best = core::find_optimal_phi(analyzer);
  std::printf("\noptimal phi = %.0f h with Y = %.4f (%s)\n", best.phi, best.y,
              best.beneficial ? "guarded operation is beneficial"
                              : "guarded operation does not pay off");
  return 0;
}
