// Custom SAN walk-through: the modelling framework is general, not tied to
// the paper's GSU models. This example builds a small fault-tolerant
// queueing system — an M/M/1/K queue whose server breaks down and gets
// repaired — as a stochastic activity network, then:
//
//   1. generates its tangible reachability graph,
//   2. solves steady-state, transient and accumulated reward measures,
//   3. cross-checks one measure against discrete-event simulation,
//   4. emits Graphviz renderings of the SAN and its reachability graph.
//
//   ./build/examples/custom_san

#include <cstdio>

#include "san/dot_export.hh"
#include "san/expr.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"
#include "util/table.hh"

int main() {
  using namespace gop;
  using namespace gop::san;

  // --- model: M/M/1/K queue with server breakdowns ---------------------------
  const int32_t capacity = 4;
  const double arrival_rate = 3.0;   // jobs/h
  const double service_rate = 4.0;   // jobs/h while the server is up
  const double failure_rate = 0.05;  // server breakdowns/h
  const double repair_rate = 0.5;    // repairs/h

  SanModel model("mm1k_breakdown");
  const PlaceRef queue = model.add_place("queue", 0);
  const PlaceRef up = model.add_place("up", 1);

  model.add_timed_activity(
      "arrive", [queue, capacity](const Marking& m) { return m[queue.index] < capacity; },
      constant_rate(arrival_rate), add_mark(queue, 1));
  model.add_timed_activity("serve", all_of({has_tokens(queue), has_tokens(up)}),
                           constant_rate(service_rate), add_mark(queue, -1));
  model.add_timed_activity("break", has_tokens(up), constant_rate(failure_rate),
                           set_mark(up, 0));
  model.add_timed_activity("repair", mark_eq(up, 0), constant_rate(repair_rate),
                           set_mark(up, 1));

  // --- state space -------------------------------------------------------------
  const GeneratedChain chain = generate_state_space(model);
  std::printf("reachability: %zu tangible states, %zu transitions\n\n", chain.state_count(),
              chain.ctmc().transitions().size());

  // --- reward structures ---------------------------------------------------------
  RewardStructure queue_length("queue length");
  queue_length.add(always(), [queue](const Marking& m) {
    return static_cast<double>(m[queue.index]);
  });

  RewardStructure server_down("server down");
  server_down.add(mark_eq(up, 0), 1.0);

  RewardStructure rejected("rejected arrivals");  // impulse on blocked arrivals?
  // Arrivals are disabled when full, so count lost work as time-at-capacity:
  rejected.add(mark_eq(queue, capacity), arrival_rate);

  TextTable table({"measure", "value"});
  table.begin_row().add("steady-state mean queue length").add_double(
      chain.steady_state_reward(queue_length), 5);
  table.begin_row().add("steady-state P(server down)").add_double(
      chain.steady_state_reward(server_down), 5);
  table.begin_row().add("steady-state loss rate (jobs/h)").add_double(
      chain.steady_state_reward(rejected), 5);
  table.begin_row().add("mean queue length at t = 0.5 h").add_double(
      chain.instant_reward(queue_length, 0.5), 5);
  table.begin_row().add("expected job-hours queued in [0, 8 h]").add_double(
      chain.accumulated_reward(queue_length, 8.0), 5);
  std::fputs(table.to_string().c_str(), stdout);

  // --- cross-check against simulation ---------------------------------------------
  SanSimulator simulator(model);
  sim::ReplicationOptions replications;
  replications.seed = 2026;
  replications.min_replications = 2000;
  replications.max_replications = 2000;
  const auto estimate = simulator.estimate_accumulated_reward(queue_length, 8.0, replications);
  std::printf("\nsimulation cross-check (accumulated queue length, [0, 8 h]):\n");
  std::printf("  numerical : %.5f\n  simulated : %.5f +/- %.5f (95%% CI, %zu reps)\n",
              chain.accumulated_reward(queue_length, 8.0), estimate.mean(),
              estimate.half_width(), estimate.replications());

  // --- Graphviz artifacts ----------------------------------------------------------
  std::printf("\nGraphviz (render with `dot -Tsvg`):\n");
  std::printf("--- model (first lines) ---\n");
  const std::string model_dot = model_to_dot(model);
  std::fwrite(model_dot.data(), 1, std::min<size_t>(model_dot.size(), 400), stdout);
  std::printf("...\n--- reachability has %zu chars; head: ---\n",
              reachability_to_dot(chain).size());
  const std::string reach_dot = reachability_to_dot(chain);
  std::fwrite(reach_dot.data(), 1, std::min<size_t>(reach_dot.size(), 400), stdout);
  std::printf("...\n");
  return 0;
}
