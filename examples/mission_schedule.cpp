// Mission schedule: planning *successive* onboard upgrades (the paper's
// Figure 1 shows guarded operation as one link in a chain of upgrades; its
// §2 notes theta is re-chosen after each onboard validation). This example
// plans a whole mission: a sequence of upgrade slots, each with its own
// theta (time to the following upgrade) and its own mu_new (what onboard
// validation estimated for that release). For each slot it computes the
// optimal guarded-operation duration and the expected worth gained, then
// totals the mission ledger.
//
//   ./build/examples/mission_schedule

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/table.hh"

namespace {

struct UpgradeSlot {
  const char* release;
  double theta;   // hours until the next upgrade
  double mu_new;  // validated fault-manifestation rate of this release
};

}  // namespace

int main() {
  using namespace gop;

  // A plausible multi-year mission: early releases are riskier (shorter
  // validation history), later ones more mature; slot lengths follow the
  // mission phases.
  const UpgradeSlot slots[] = {
      {"flight-sw v2.0", 5000.0, 2e-4},
      {"flight-sw v2.1", 10000.0, 1e-4},
      {"science-pkg v3.0", 8000.0, 1.5e-4},
      {"flight-sw v2.2", 10000.0, 0.5e-4},
      {"maintenance v2.3", 4000.0, 0.3e-4},
  };

  std::printf("=== Mission upgrade schedule (Table 3 safeguard parameters) ===\n\n");

  TextTable table({"release", "theta [h]", "mu_new", "phi* [h]", "Y(phi*)", "E[W0] [h]",
                   "E[Wphi*] [h]", "worth gained [h]"});
  double total_worth = 0.0;
  double total_gain = 0.0;
  double total_ideal = 0.0;

  for (const UpgradeSlot& slot : slots) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.theta = slot.theta;
    params.mu_new = slot.mu_new;

    core::PerformabilityAnalyzer analyzer(params);
    core::OptimizeOptions optimize;
    optimize.grid_points = 21;
    optimize.phi_tolerance = 10.0;
    const core::OptimalPhi best = core::find_optimal_phi(analyzer, optimize);
    const core::PerformabilityResult at_best = analyzer.evaluate(best.beneficial ? best.phi : 0.0);

    table.begin_row()
        .add(slot.release)
        .add_double(slot.theta, 6)
        .add_double(slot.mu_new, 4)
        .add_double(best.beneficial ? best.phi : 0.0, 5)
        .add_double(best.y, 5)
        .add_double(at_best.e_w0, 6)
        .add_double(at_best.e_wphi, 6)
        .add_double(at_best.e_wphi - at_best.e_w0, 5);

    total_worth += at_best.e_wphi;
    total_gain += at_best.e_wphi - at_best.e_w0;
    total_ideal += at_best.e_wi;
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nmission totals: ideal worth %.0f h, expected worth with per-slot optimal guarding "
      "%.0f h\n"
      "guarded operation recovers %.0f h of expected mission worth over the whole schedule\n"
      "(%.1f%% of the total expected degradation without it).\n",
      total_ideal, total_worth, total_gain,
      100.0 * total_gain / (total_ideal - (total_worth - total_gain)));
  return 0;
}
