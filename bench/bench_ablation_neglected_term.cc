// Ablation B — the subtrahend the paper drops in Eq (19):
//   (2 - (rho1+rho2)) * int_0^phi int_tau^theta tau h(tau) f(x) dx dtau
// The paper argues it is negligible because rho1+rho2 ~ 2 while the retained
// minuend carries a factor 2*theta. We restore an *upper bound* on the term
// ((2-rho_sum)(phi*Ihf + Itauh*If)) and show Y barely moves — and therefore
// that the paper's approximation is sound in this regime. The effect grows
// when the overheads are large (second table, alpha = beta = 300).

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/table.hh"

namespace {

void run(const gop::core::GsuParameters& params, const char* label) {
  using namespace gop;

  core::PerformabilityAnalyzer baseline(params);
  core::AnalyzerOptions restored_options;
  restored_options.include_neglected_term = true;
  core::PerformabilityAnalyzer restored(params, restored_options);

  std::printf("--- %s (rho1 = %.4f, rho2 = %.4f) ---\n", label, baseline.rho1(),
              baseline.rho2());
  TextTable table({"phi [h]", "Y (paper approx)", "Y (term restored)", "abs diff",
                   "bound on term [h]"});
  for (double phi : core::linspace(0.0, params.theta, 6)) {
    const core::PerformabilityResult a = baseline.evaluate(phi);
    const core::PerformabilityResult b = restored.evaluate(phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(a.y, 6)
        .add_double(b.y, 6)
        .add_double(b.y - a.y, 3)
        .add_double(b.neglected_term, 4);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace gop;

  std::printf("=== Ablation B — Eq 19's neglected term restored (upper bound) ===\n\n");

  run(core::GsuParameters::table3(), "Table 3 (alpha = beta = 6000)");

  core::GsuParameters heavy = core::GsuParameters::table3();
  heavy.alpha = 300.0;  // 12 s per AT: overheads an order of magnitude larger
  heavy.beta = 300.0;
  run(heavy, "stress (alpha = beta = 300)");
  return 0;
}
