// Solver performance comparison (google-benchmark): the engines behind the
// constituent-measure solutions. Shows why the library defaults to the dense
// matrix exponential for the paper's stiff horizons and keeps uniformization
// for the non-stiff regime, and what a Monte Carlo estimate costs relative
// to the numerical solution.

#include <benchmark/benchmark.h>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"

namespace {

using namespace gop;

const core::GsuParameters& table3() {
  static const core::GsuParameters params = core::GsuParameters::table3();
  return params;
}

void BM_StateSpaceGeneration_RMGd(benchmark::State& state) {
  const core::RmGd gd = core::build_rm_gd(table3());
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::generate_state_space(gd.model).state_count());
  }
}
BENCHMARK(BM_StateSpaceGeneration_RMGd);

void BM_Transient_MatrixExponential(benchmark::State& state) {
  const core::RmNd nd = core::build_rm_nd(table3(), table3().mu_new);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kMatrixExponential;
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), t, options));
  }
}
BENCHMARK(BM_Transient_MatrixExponential)->Arg(1)->Arg(100)->Arg(10000);

void BM_Transient_Uniformization(benchmark::State& state) {
  const core::RmNd nd = core::build_rm_nd(table3(), table3().mu_new);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kUniformization;
  // Lambda ~ 2.4e3/h here, so t = 1 h is already ~2.4e3 DTMC steps; the
  // paper's t = 1e4 h would be 2.4e7 steps — the stiff regime the matrix
  // exponential exists for (excluded: it would dominate the whole suite).
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), t, options));
  }
}
BENCHMARK(BM_Transient_Uniformization)->Arg(1)->Arg(100);

void BM_SteadyState(benchmark::State& state) {
  const core::RmGp gp = core::build_rm_gp(table3());
  const san::GeneratedChain chain = san::generate_state_space(gp.model);
  markov::SteadyStateOptions options;
  options.method = static_cast<markov::SteadyStateMethod>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::steady_state_distribution(chain.ctmc(), options));
  }
}
BENCHMARK(BM_SteadyState)
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kGth))
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kPower))
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kGaussSeidel));

void BM_EvaluateY(benchmark::State& state) {
  core::PerformabilityAnalyzer analyzer(table3());
  double phi = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.evaluate(phi).y);
    phi = phi < 9000.0 ? phi + 1000.0 : 1000.0;  // defeat any memoization
  }
}
BENCHMARK(BM_EvaluateY);

void BM_AnalyzerConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::PerformabilityAnalyzer analyzer(table3());
    benchmark::DoNotOptimize(analyzer.rho1());
  }
}
BENCHMARK(BM_AnalyzerConstruction);

void BM_MonteCarlo_SingleMissionPath(benchmark::State& state) {
  core::McValidator validator(core::GsuParameters::scaled_mission(100.0));
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.sample_wphi(rng, 50.0, 1.9, 0.6));
  }
}
BENCHMARK(BM_MonteCarlo_SingleMissionPath);

}  // namespace

BENCHMARK_MAIN();
