// Solver performance comparison (google-benchmark): the engines behind the
// constituent-measure solutions. Shows why the SolverPlan defaults to the
// dense matrix exponential for the paper's stiff horizons, keeps
// uniformization for the non-stiff regime and Krylov expm·v for chains too
// large to densify, and what a Monte Carlo estimate costs relative to the
// numerical solution. The BM_*_LargeSparse arms run a ~2.6e5-state random
// SAN through the sparse engines at macro-bench (single-iteration)
// resolution.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_support.hh"
#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "linalg/dense_matrix.hh"
#include "linalg/lu.hh"
#include "markov/matrix_exp.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "san/random_model.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"

namespace {

using namespace gop;

linalg::DenseMatrix random_matrix(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.1, 1.0);
  linalg::DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = dist(rng) + (i == j ? double(n) : 0.0);
  }
  return m;
}

const core::GsuParameters& table3() {
  static const core::GsuParameters params = core::GsuParameters::table3();
  return params;
}

void BM_StateSpaceGeneration_RMGd(benchmark::State& state) {
  const core::RmGd gd = core::build_rm_gd(table3());
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::generate_state_space(gd.model).state_count());
  }
}
BENCHMARK(BM_StateSpaceGeneration_RMGd);

void BM_Transient_MatrixExponential(benchmark::State& state) {
  const core::RmNd nd = core::build_rm_nd(table3(), table3().mu_new);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kMatrixExponential;
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), t, options));
  }
}
BENCHMARK(BM_Transient_MatrixExponential)->Arg(1)->Arg(100)->Arg(10000);

void BM_Transient_Uniformization(benchmark::State& state) {
  const core::RmNd nd = core::build_rm_nd(table3(), table3().mu_new);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kUniformization;
  // Lambda ~ 2.4e3/h here, so t = 1 h is already ~2.4e3 DTMC steps; the
  // paper's t = 1e4 h would be 2.4e7 steps — the stiff regime the matrix
  // exponential exists for (excluded: it would dominate the whole suite).
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), t, options));
  }
}
BENCHMARK(BM_Transient_Uniformization)->Arg(1)->Arg(100);

void BM_Transient_Krylov(benchmark::State& state) {
  const core::RmNd nd = core::build_rm_nd(table3(), table3().mu_new);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kKrylov;
  // Same arguments as the uniformization arm above: at t = 100 h the chain is
  // already ~2.4e5 DTMC steps deep, the regime where the adaptive Krylov
  // sub-stepping starts paying for itself on chains too big to densify.
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), t, options));
  }
}
BENCHMARK(BM_Transient_Krylov)->Arg(1)->Arg(100);

/// The san_large_sparse_test chain (~2.6e5 states, seeded, deterministic):
/// built once and shared by every large-arm iteration; generation itself is
/// measured separately by BM_StateSpaceGeneration_LargeSparse.
const san::GeneratedChain& large_sparse_chain() {
  static const san::GeneratedChain* chain = [] {
    san::RandomModelOptions options;
    options.min_places = options.max_places = 10;
    options.min_activities = options.max_activities = 20;
    options.max_cases = 2;
    options.place_capacity = 3;
    const san::SanModel model = san::random_san(1, options);
    return new san::GeneratedChain(san::generate_state_space(model));
  }();
  return *chain;
}

void BM_StateSpaceGeneration_LargeSparse(benchmark::State& state) {
  san::RandomModelOptions options;
  options.min_places = options.max_places = 10;
  options.min_activities = options.max_activities = 20;
  options.max_cases = 2;
  options.place_capacity = 3;
  const san::SanModel model = san::random_san(1, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(san::generate_state_space(model).state_count());
  }
}
BENCHMARK(BM_StateSpaceGeneration_LargeSparse)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The >= 1e5-state sparse arm: one transient solve at Lambda*t ~ 47 through
// each sparse engine the SolverPlan can pick at this size. Seconds per solve,
// so a single iteration per repetition — macro-bench resolution is enough to
// track the engines' relative cost across PRs.
void BM_Transient_LargeSparse(benchmark::State& state) {
  const san::GeneratedChain& chain = large_sparse_chain();
  markov::TransientOptions options;
  options.method = static_cast<markov::TransientMethod>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::transient_distribution(chain.ctmc(), 1.0, options));
  }
}
BENCHMARK(BM_Transient_LargeSparse)
    ->Arg(static_cast<int>(markov::TransientMethod::kUniformization))
    ->Arg(static_cast<int>(markov::TransientMethod::kKrylov))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SteadyState(benchmark::State& state) {
  const core::RmGp gp = core::build_rm_gp(table3());
  const san::GeneratedChain chain = san::generate_state_space(gp.model);
  markov::SteadyStateOptions options;
  options.method = static_cast<markov::SteadyStateMethod>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::steady_state_distribution(chain.ctmc(), options));
  }
}
BENCHMARK(BM_SteadyState)
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kGth))
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kPower))
    ->Arg(static_cast<int>(markov::SteadyStateMethod::kGaussSeidel));

void BM_EvaluateY(benchmark::State& state) {
  core::PerformabilityAnalyzer analyzer(table3());
  double phi = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.evaluate(phi).y);
    phi = phi < 9000.0 ? phi + 1000.0 : 1000.0;  // defeat any memoization
  }
}
BENCHMARK(BM_EvaluateY);

void BM_AnalyzerConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::PerformabilityAnalyzer analyzer(table3());
    benchmark::DoNotOptimize(analyzer.rho1());
  }
}
BENCHMARK(BM_AnalyzerConstruction);

// The raw dense-multiply kernel across the dispatch regimes: fixed-size
// unrolled (n <= 15), plain strip (n < 512), and the (k, j)-tiled path
// (n = 512). Items/sec is 2n^3 flops per iteration.
void BM_DenseMultiply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const linalg::DenseMatrix a = random_matrix(n, 7);
  const linalg::DenseMatrix b = random_matrix(n, 11);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    linalg::multiply_into(c, a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_DenseMultiply)->Arg(7)->Arg(14)->Arg(48)->Arg(192)->Arg(512);

// Multi-RHS solve on a shared factorization: factor once, then solve an
// n-column block per iteration — the shape the Padé solve (V-U) X = (V+U)
// and the batched session layers hit.
void BM_LuSolveMultiRhs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const linalg::LuFactorization lu(random_matrix(n, 7));
  const linalg::DenseMatrix rhs = random_matrix(n, 11);
  linalg::DenseMatrix x;
  for (auto _ : state) {
    lu.solve_into(rhs, x);
    benchmark::DoNotOptimize(x.data().data());
  }
}
BENCHMARK(BM_LuSolveMultiRhs)->Arg(7)->Arg(48)->Arg(192)->Arg(512);

// Steady-state workspace reuse: the whole Padé + squaring pipeline with zero
// allocations per iteration once the workspace is warm (the property
// markov_expm_workspace_test pins down).
void BM_ExpmWorkspaceReuse(benchmark::State& state) {
  const linalg::DenseMatrix a = random_matrix(static_cast<size_t>(state.range(0)), 7);
  markov::ExpmWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::matrix_exponential(a, 1.0, ws).data().data());
  }
}
BENCHMARK(BM_ExpmWorkspaceReuse)->Arg(7)->Arg(48);

void BM_MonteCarlo_SingleMissionPath(benchmark::State& state) {
  core::McValidator validator(core::GsuParameters::scaled_mission(100.0));
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.sample_wphi(rng, 50.0, 1.9, 0.6));
  }
}
BENCHMARK(BM_MonteCarlo_SingleMissionPath);

}  // namespace

GOP_BENCH_MAIN();
