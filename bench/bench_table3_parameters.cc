// Table 3: the baseline parameter assignment, together with the quantities
// the paper derives from it in prose (mean time between messages, AT /
// checkpoint durations, and the RMGp-derived overheads rho1, rho2).

#include <cstdio>

#include "core/performability.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  const core::GsuParameters params = core::GsuParameters::table3();

  std::printf("=== Table 3 — parameter value assignment ===\n\n");
  TextTable table({"parameter", "value", "interpretation"});
  table.begin_row().add("theta").add_double(params.theta, 6).add("hours to the next upgrade");
  table.begin_row().add("lambda").add_double(params.lambda, 6).add(
      "messages/hour per process (one per 3 s)");
  table.begin_row().add("mu_new").add_double(params.mu_new, 6).add(
      "fault manifestations/hour, upgraded version");
  table.begin_row().add("mu_old").add_double(params.mu_old, 6).add(
      "fault manifestations/hour, old version");
  table.begin_row().add("c").add_double(params.coverage, 6).add("acceptance-test coverage");
  table.begin_row().add("p_ext").add_double(params.p_ext, 6).add(
      "probability a message is external");
  table.begin_row().add("alpha").add_double(params.alpha, 6).add(
      "AT completions/hour (600 ms each)");
  table.begin_row().add("beta").add_double(params.beta, 6).add(
      "checkpoint completions/hour (600 ms each)");
  std::fputs(table.to_string().c_str(), stdout);

  core::PerformabilityAnalyzer analyzer(params);
  std::printf("\nderived (RMGp steady state): rho1 = %.4f (paper: 0.98), rho2 = %.4f (paper: 0.95)\n",
              analyzer.rho1(), analyzer.rho2());
  std::printf("model sizes: RMGd %zu states, RMGp %zu states, RMNd %zu states\n",
              analyzer.gd_chain().state_count(), analyzer.gp_chain().state_count(),
              analyzer.nd_new_chain().state_count());
  return 0;
}
