// Protocol-level validation: the executable MDCD simulator (src/mdcd) vs the
// SAN reward models that abstract it. This is the strongest fidelity check
// the reproduction has — the SANs were reconstructed from the paper's prose,
// and here their predictions are compared against the protocol itself.
//
// Runs on the mission-compressed Table 3 (all dimensionless ratios
// preserved; see GsuParameters::scaled_mission).

#include <cstdio>

#include "core/performability.hh"
#include "mdcd/protocol.hh"
#include "sim/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== MDCD protocol simulator vs SAN reward models ===\n\n");

  const core::GsuParameters params = core::GsuParameters::scaled_mission(100.0);
  core::PerformabilityAnalyzer analyzer(params);

  // --- overheads: emergent busy fractions vs RMGp steady state ---------------
  {
    mdcd::ProtocolOptions options;
    options.horizon = 0.3 * params.theta;
    sim::Rng rng(424242);
    sim::OnlineStats overhead1, overhead2, at_rate, ckpt_rate;
    for (int i = 0; i < 120; ++i) {
      const mdcd::RunStats stats = mdcd::run_guarded_operation(params, rng, options);
      if (!stats.in_a1()) continue;  // pure guarded-operation windows only
      overhead1.add(1.0 - stats.rho(mdcd::ProcessId::kP1New));
      overhead2.add(1.0 - stats.rho(mdcd::ProcessId::kP2));
      at_rate.add(static_cast<double>(stats.at_count) / stats.observed_time);
      ckpt_rate.add(static_cast<double>(stats.checkpoint_count) / stats.observed_time);
    }

    TextTable table({"measure", "protocol (95% CI)", "RMGp"});
    table.begin_row()
        .add("1 - rho1")
        .add(str_format("%.5f +/- %.5f", overhead1.mean(), overhead1.ci_half_width()))
        .add_double(1.0 - analyzer.rho1(), 5);
    table.begin_row()
        .add("1 - rho2")
        .add(str_format("%.5f +/- %.5f", overhead2.mean(), overhead2.ci_half_width()))
        .add_double(1.0 - analyzer.rho2(), 5);
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("protocol activity rates: %.1f ATs/h, %.1f checkpoints/h (%zu G-OP windows)\n\n",
                at_rate.mean(), ckpt_rate.mean(), overhead1.count());
  }

  // --- verdict probabilities at phi vs RMGd instant rewards ------------------
  {
    const double phi = 0.6 * params.theta;
    const core::ConstituentMeasures m = analyzer.constituents(phi);
    mdcd::ProtocolOptions options;
    options.horizon = phi;
    sim::Rng rng(90125);
    const size_t runs = 2000;
    size_t a1 = 0, a3 = 0, a4 = 0, detected_failed = 0;
    for (size_t i = 0; i < runs; ++i) {
      const mdcd::RunStats stats = mdcd::run_guarded_operation(params, rng, options);
      a1 += stats.in_a1() ? 1 : 0;
      a3 += stats.in_a3() ? 1 : 0;
      a4 += stats.in_a4() ? 1 : 0;
      detected_failed += (stats.detected && stats.failed) ? 1 : 0;
    }
    const double n = static_cast<double>(runs);
    TextTable table({"verdict class at phi", "protocol", "RMGd"});
    const auto frac = [n](size_t count) { return static_cast<double>(count) / n; };
    table.begin_row().add("A'1  (no verdict)").add_double(frac(a1), 5).add_double(m.p_a1_phi, 5);
    table.begin_row().add("A'3  (detected, alive)").add_double(frac(a3), 5).add_double(m.i_h, 5);
    table.begin_row()
        .add("detected then failed")
        .add_double(frac(detected_failed), 5)
        .add_double(m.i_hf, 5);
    table.begin_row()
        .add("A'4  (failed undetected)")
        .add_double(frac(a4), 5)
        .add_double(1.0 - m.p_a1_phi - m.i_h - m.i_hf, 5);
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("(phi = %.0f h on the compressed mission, %zu runs)\n\n", phi, runs);
  }

  // --- the scenario-2 residue -------------------------------------------------
  {
    core::GsuParameters perfect = params;
    perfect.coverage = 1.0;
    perfect.mu_old = 1e-12;
    mdcd::ProtocolOptions options;
    options.horizon = perfect.theta;
    sim::Rng rng(5150);
    const size_t runs = 2000;
    size_t a4 = 0, resolved = 0;
    for (size_t i = 0; i < runs; ++i) {
      const mdcd::RunStats stats = mdcd::run_guarded_operation(perfect, rng, options);
      a4 += stats.in_a4() ? 1 : 0;
      resolved += (stats.detected || stats.failed) ? 1 : 0;
    }
    std::printf(
        "scenario-2 residue at c = 1: %zu/%zu runs (%.2f%%) failed undetected via the\n"
        "paper's §5.1 scenario 2 — a message sent before contamination passes its AT\n"
        "and wrongly re-establishes confidence. The event-level protocol exhibits the\n"
        "race the SAN folds into coverage; its size (~0.1%% of upgrades at these rates)\n"
        "bounds the fidelity cost of that abstraction.\n",
        a4, runs, 100.0 * static_cast<double>(a4) / static_cast<double>(runs));
  }
  return 0;
}
