// Ablation A — the discount-factor policy gamma of Eq (4).
//
// The paper defines gamma = 1 - tau/theta with tau "the mean time to error
// detection". This bench compares the conventions:
//   paper-linear      tau = Table-1 Itauh (censored)   -> matches Figs 9-12
//   literal-linear    tau = literal int tau h(tau)     -> Y far above the
//                     published curves, which is how we know the paper used
//                     its own Table-1 reward inside gamma
//   constant 0.9      a fixed discount
//   conditional-mean  tau = E[tau | detected]
// The optimum location is driven mostly by the S1/S2 trade-off, but the
// gamma policy shifts both the level of Y and the optimum.

#include <cstdio>

#include "bench_common.hh"
#include "core/gamma.hh"

int main() {
  using namespace gop;

  bench::print_header("Ablation A — gamma policy (Table 3 parameters)",
                      "how the Eq-4 discount convention shifts Y(phi) and the optimum");

  const core::GsuParameters params = core::GsuParameters::table3();
  const std::vector<double> phis = core::linspace(0.0, params.theta, 11);
  std::vector<bench::Series> series;

  for (core::GammaPolicy policy :
       {core::GammaPolicy::kPaperLinear, core::GammaPolicy::kLiteralLinear,
        core::GammaPolicy::kConstant, core::GammaPolicy::kConditionalMean}) {
    core::AnalyzerOptions options;
    options.gamma_policy = policy;
    options.constant_gamma = 0.9;
    core::PerformabilityAnalyzer analyzer(params, options);
    series.push_back(
        bench::Series{core::gamma_policy_name(policy), core::sweep_phi(analyzer, phis)});
  }

  bench::print_series_table(series);
  return 0;
}
