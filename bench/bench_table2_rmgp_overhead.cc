// Table 2: the steady-state overhead measures 1-rho1 and 1-rho2 solved in
// the reward model RMGp, for the two (alpha, beta) settings the paper's §6
// uses, plus a wider sweep showing how the overheads scale with the costs of
// the safeguard activities.
//
// Paper anchor points: alpha=beta=6000 -> (rho1, rho2) ~ (0.98, 0.95);
// alpha=beta=2500 -> (0.95, 0.90).

#include <cstdio>

#include "core/performability.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== Table 2 — overhead measures in RMGp (steady state) ===\n\n");
  std::printf("1-rho1: predicate MARK(P1nExt)==1, rate 1\n");
  std::printf(
      "1-rho2: predicate (MARK(P1nInt)==1 && MARK(P2DB)==0) || (MARK(P2Ext)==1 && "
      "MARK(P2DB)==1), rate 1\n\n");

  TextTable table({"alpha=beta", "1-rho1", "1-rho2", "rho1", "rho2", "paper (rho1,rho2)"});
  for (double rate : {12000.0, 6000.0, 4000.0, 2500.0, 1500.0, 1000.0}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = rate;
    params.beta = rate;
    core::PerformabilityAnalyzer analyzer(params);
    std::string anchor = "-";
    if (rate == 6000.0) anchor = "(0.98, 0.95)";
    if (rate == 2500.0) anchor = "(0.95, 0.90)";
    table.begin_row()
        .add_double(rate, 6)
        .add_double(1.0 - analyzer.rho1(), 4)
        .add_double(1.0 - analyzer.rho2(), 4)
        .add_double(analyzer.rho1(), 4)
        .add_double(analyzer.rho2(), 4)
        .add(anchor);
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
