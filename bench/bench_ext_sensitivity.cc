// Extension study (not in the paper): systematic sensitivity of Y.
//
// The paper probes sensitivity one curve at a time (Figures 9-12). Here a
// tornado table varies every Table 3 parameter by +/-20% at the published
// optimum phi = 7000 and ranks them by swing, plus finite-difference
// derivatives dY/dparam. Expected from the paper's narrative: mu_new and
// coverage dominate, mu_old and lambda barely matter.

#include <cstdio>

#include "core/sensitivity.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== Extension — tornado sensitivity of Y at phi = 7000 (Table 3, +/-20%%) ===\n\n");

  const core::GsuParameters params = core::GsuParameters::table3();
  const double phi = 7000.0;
  const auto entries = core::tornado_y(params, phi, 0.20);

  TextTable table({"parameter", "low", "high", "Y(low)", "Y(high)", "swing"});
  for (const core::TornadoEntry& entry : entries) {
    table.begin_row()
        .add(core::parameter_name(entry.parameter))
        .add_double(entry.low_value, 5)
        .add_double(entry.high_value, 5)
        .add_double(entry.y_low, 5)
        .add_double(entry.y_high, 5)
        .add_double(entry.swing(), 4);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nbase Y(%.0f) = %.5f\n\n", phi, entries.front().y_base);

  std::printf("finite-difference derivatives at the base point:\n");
  TextTable derivatives({"parameter", "value", "dY/dparam", "elasticity (dY/Y)/(dp/p)"});
  for (core::GsuParameterId id : core::all_parameters()) {
    const double value = core::get_parameter(params, id);
    const double derivative = core::y_parameter_derivative(params, phi, id);
    derivatives.begin_row()
        .add(core::parameter_name(id))
        .add_double(value, 5)
        .add_double(derivative, 4)
        .add_double(derivative * value / entries.front().y_base, 4);
  }
  std::fputs(derivatives.to_string().c_str(), stdout);
  return 0;
}
