// Parallel scaling of the evaluation engine (google-benchmark): wall-clock
// time of (a) the 41-point phi-sweep behind the paper's Figure-9-style
// studies and (b) a 1e5-replication Monte Carlo estimate of E[Wphi], each at
// 1/2/4/8 worker threads. Speedup(T) = real_time(threads:1) /
// real_time(threads:T); on a multi-core host the sweep should reach >= 3x at
// four threads (each phi-point is an independent bundle of solver calls), and
// the MC run close to linear (replications are embarrassingly parallel).
// Results are bit-identical across thread counts by the gop::par ordered-
// reduction contract, so the speedup is free of accuracy trade-offs.
//
// Emit machine-readable output for the perf trajectory with
//   bench_parallel_scaling --benchmark_format=json
// (tools/run_benches.sh writes BENCH_scaling.json at the repo root).

#include <benchmark/benchmark.h>

#include "bench_support.hh"

#include "bench_common.hh"
#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "core/sweep.hh"
#include "sim/replication.hh"

namespace {

using namespace gop;

const core::GsuParameters& table3() {
  static const core::GsuParameters params = core::GsuParameters::table3();
  return params;
}

// One analyzer / validator shared by every thread-count arm so the arms
// measure evaluation only, not model construction. Safe: both are
// const-thread-safe (see performability.hh) and google-benchmark runs the
// arms sequentially.
const core::PerformabilityAnalyzer& analyzer() {
  static const core::PerformabilityAnalyzer instance(table3());
  return instance;
}

// Monte Carlo arm uses the mission-compressed Table 3 variant: a table3()
// path costs ~50 ms ([0, 1e4 h] of guarded operation), which would put a
// 1e5-replication arm at over an hour; compression preserves the
// dependability and overhead ratios while shrinking per-path event counts
// ~100x (see GsuParameters::scaled_mission).
const core::GsuParameters& mc_params() {
  static const core::GsuParameters params = core::GsuParameters::scaled_mission();
  return params;
}

const core::McValidator& validator() {
  static const core::McValidator instance(mc_params());
  return instance;
}

void BM_SweepPhi41(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  const std::vector<double> grid = core::linspace(0.0, table3().theta, 41);
  const core::SweepOptions options{.threads = threads};
  const bench::CounterWatch expm("markov.matrix_exponentials");
  for (auto _ : state) {
    std::vector<core::PerformabilityResult> results =
        core::sweep_phi(analyzer(), grid, options);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["points"] = 41.0;
  state.counters["expm_per_sweep"] = expm.per_iteration(state.iterations());
}
BENCHMARK(BM_SweepPhi41)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MonteCarlo1e5(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  // Fixed replication count (min == max, no CI target): every arm runs the
  // exact same 1e5 indexed RNG streams and produces the same estimate.
  sim::ReplicationOptions options;
  options.seed = 20020623;
  options.min_replications = 100'000;
  options.max_replications = 100'000;
  options.threads = threads;
  const double phi = 0.7 * mc_params().theta;
  const double rho_sum = 1.99;
  const double gamma = 0.9;
  // No DoNotOptimize on `mean`: run_replications is an opaque external call
  // (never elided), the counter below keeps the value live, and GCC's
  // "+m,r"-constraint DoNotOptimize(T&) is known to clobber the variable.
  double mean = 0.0;
  for (auto _ : state) {
    const sim::ReplicationResult result = sim::run_replications(
        [&](sim::Rng& rng) { return validator().sample_wphi(rng, phi, rho_sum, gamma); },
        options);
    mean = result.mean();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["replications"] = 100'000.0;
  state.counters["mean_wphi"] = mean;  // identical across arms (determinism check)
}
BENCHMARK(BM_MonteCarlo1e5)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

GOP_BENCH_MAIN();
