// Ablation C — translated reward-model solution vs. Monte Carlo simulation
// of the untranslated formulation (§3.2).
//
// The validator samples mission paths directly: guarded operation until
// min(tau, phi), then the surviving configuration until theta, worth
// accumulated per Eq (4). Agreement confirms the §4 translation; the
// residual gap measures the paper's deliberate approximations (steady-state
// rho, Eq 19's dropped term, the Table-1 Itauh convention inside gamma).
// A per-path-gamma column quantifies E[gamma(tau) W] vs gamma-bar E[W].

#include <cstdio>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf(
      "=== Ablation C — translation vs Monte Carlo (mission-compressed Table 3) ===\n\n");

  // Runs on the mission-compressed Table 3 (theta/1000, fault rates x1000):
  // every dimensionless quantity of the analysis is preserved (rho1/rho2,
  // mu*theta, coverage), and the translated Y is invariant to within ~1%,
  // while a simulated mission path costs ~1000x fewer events (the RMGd
  // dirty-bit dynamics generate ~1000 real transitions per hour).
  core::GsuParameters params = core::GsuParameters::scaled_mission(1000.0);
  core::PerformabilityAnalyzer analyzer(params);

  core::McOptions mc_options;
  mc_options.replications.min_replications = 10'000;
  mc_options.replications.max_replications = 10'000;
  core::McValidator validator(params, mc_options);

  core::McOptions per_path_options = mc_options;
  per_path_options.per_path_gamma = true;
  core::McValidator per_path_validator(params, per_path_options);

  TextTable table({"phi [h]", "Y (translated)", "Y (MC)", "MC 95% range", "Y (MC per-path gamma)"});
  for (double phi : core::linspace(0.0, params.theta, 6)) {
    const core::PerformabilityResult a = analyzer.evaluate(phi);
    const core::McPerformability mc =
        validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), a.gamma);
    const core::McPerformability pp =
        per_path_validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), a.gamma);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(a.y, 5)
        .add_double(mc.y, 5)
        .add(gop::str_format("[%.4f, %.4f]", mc.y_low, mc.y_high))
        .add_double(pp.y, 5);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n10000 replications per estimate; seeds fixed for reproducibility.\n");
  return 0;
}
