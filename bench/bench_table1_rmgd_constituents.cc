// Table 1: the four constituent measures solved in the reward model RMGd,
// each with its UltraSAN-style predicate-rate pair, evaluated across phi for
// the Table 3 parameters. Also cross-checks the built-in identity
//   P(A'_1) + Ih + Ihf + P(undetected failure) = 1 at every phi
// (the four instant-of-time predicates partition the state space).

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "san/expr.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== Table 1 — constituent measures and reward structures in RMGd ===\n\n");
  std::printf("measure              reward type                     predicate-rate pair\n");
  std::printf("Ih  = int h          instant-of-time at phi          detected==1 && failure==0 -> 1\n");
  std::printf("Itauh = int tau h    accumulated over [0,phi]        detected==0 -> 1; detected==0 && failure==1 -> -1\n");
  std::printf("Ihf = int int h f    instant-of-time at phi          detected==1 && failure==1 -> 1\n");
  std::printf("P(X'_phi in A'_1)    instant-of-time at phi          detected==0 && failure==0 -> 1\n\n");

  const core::GsuParameters params = core::GsuParameters::table3();
  core::PerformabilityAnalyzer analyzer(params);

  // The remaining instant-of-time mass: undetected failure (A'_4).
  const core::RmGd& gd = analyzer.rm_gd();
  san::RewardStructure undetected_failure("A4");
  undetected_failure.add(
      san::all_of({san::mark_eq(gd.detected, 0), san::mark_eq(gd.failure, 1)}), 1.0);

  TextTable table({"phi [h]", "P(A'_1)", "Ih", "Itauh", "Ihf", "P(A'_4)", "sum(instant)"});
  for (double phi : core::linspace(0.0, params.theta, 11)) {
    const core::ConstituentMeasures m = analyzer.constituents(phi);
    const double a4 = analyzer.gd_chain().instant_reward(undetected_failure, phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(m.p_a1_phi, 6)
        .add_double(m.i_h, 6)
        .add_double(m.i_tau_h, 6)
        .add_double(m.i_hf, 6)
        .add_double(a4, 6)
        .add_double(m.p_a1_phi + m.i_h + m.i_hf + a4, 8);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nRMGd has %zu tangible states.\n", analyzer.gd_chain().state_count());
  return 0;
}
