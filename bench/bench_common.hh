#pragma once

/// Shared helpers for the figure/table benchmark binaries: each bench prints
/// the paper's series as a console table (and optionally CSV), and reports
/// the grid optimum the way the paper quotes it (on the figure's own phi
/// grid). Work-count reporting rides on the gop::obs registry (CounterWatch)
/// instead of per-bench before/after bookkeeping.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "obs/registry.hh"
#include "util/table.hh"

namespace gop::bench {

/// Per-iteration delta of a gop::obs counter across a benchmark run: construct
/// before the timing loop, read after. Used for solver work counts such as
/// "markov.matrix_exponentials" (always-on legacy counters, so no
/// obs::set_enabled is needed).
class CounterWatch {
 public:
  explicit CounterWatch(std::string_view name)
      : counter_(obs::counter(name)), before_(counter_.get()) {}

  double per_iteration(uint64_t iterations) const {
    if (iterations == 0) return 0.0;
    return static_cast<double>(counter_.get() - before_) / static_cast<double>(iterations);
  }

 private:
  obs::Counter& counter_;
  uint64_t before_;
};

struct Series {
  std::string label;
  std::vector<core::PerformabilityResult> points;

  /// phi of the maximal Y over the sweep grid (how the paper quotes optima).
  double grid_optimal_phi() const {
    double best_phi = 0.0;
    double best_y = -1.0;
    for (const auto& p : points) {
      if (p.y > best_y) {
        best_y = p.y;
        best_phi = p.phi;
      }
    }
    return best_phi;
  }

  double max_y() const {
    double best = -1.0;
    for (const auto& p : points) best = std::max(best, p.y);
    return best;
  }
};

inline void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

/// Prints phi in the first column and one Y column per series; appends the
/// per-series grid optimum and maximum below the table.
inline void print_series_table(const std::vector<Series>& series) {
  if (series.empty()) return;
  std::vector<std::string> headers{"phi [h]"};
  for (const Series& s : series) headers.push_back("Y (" + s.label + ")");
  TextTable table(std::move(headers));
  for (size_t i = 0; i < series.front().points.size(); ++i) {
    table.begin_row().add_double(series.front().points[i].phi, 6);
    for (const Series& s : series) table.add_double(s.points[i].y, 5);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("  %-28s grid-optimal phi = %6.0f   max Y = %.4f\n", s.label.c_str(),
                s.grid_optimal_phi(), s.max_y());
  }
  std::printf("\n");
}

}  // namespace gop::bench
