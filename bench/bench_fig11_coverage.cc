// Figure 11: effect of the acceptance-test coverage on the optimal
// guarded-operation duration (theta = 10000, alpha = beta = 2500).
//
// Paper result: the optimum stays at phi* = 6000 for c in {0.95, 0.75, 0.50}
// (optimality insensitive to coverage), while the attainable maximum of Y
// drops from ~1.45 to ~1.15 (the index itself is sensitive).

#include "bench_common.hh"
#include "util/strings.hh"

int main() {
  using namespace gop;

  bench::print_header(
      "Figure 11 — effect of AT coverage (theta = 10000, alpha = beta = 2500)",
      "paper: phi* stays at 6000 for c in {0.95, 0.75, 0.50}; max Y falls ~1.45 -> ~1.15");

  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  std::vector<bench::Series> series;

  for (double coverage : {0.95, 0.75, 0.50}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = 2500.0;
    params.beta = 2500.0;
    params.coverage = coverage;
    core::PerformabilityAnalyzer analyzer(params);
    series.push_back(
        bench::Series{str_format("c = %.2f", coverage), core::sweep_phi(analyzer, phis)});
  }

  bench::print_series_table(series);
  return 0;
}
