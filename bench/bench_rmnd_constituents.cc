// §5.2.3: the three constituent measures solved in the reward model RMNd
// with the single predicate-rate pair MARK(failure)==0 -> 1:
//   P(X''_theta in A''_1), P(X''_{theta-phi} in A''_1)  (mu_1 = mu_new)
//   int_phi^theta f = 1 - reward at theta-phi           (mu_1 = mu_old)

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== RMNd constituent measures (predicate MARK(failure)==0, rate 1) ===\n\n");

  const core::GsuParameters params = core::GsuParameters::table3();
  core::PerformabilityAnalyzer analyzer(params);

  TextTable table({"phi [h]", "P(X''_theta in A''1)", "P(X''_(theta-phi) in A''1)",
                   "int_phi^theta f"});
  for (double phi : core::linspace(0.0, params.theta, 11)) {
    const core::ConstituentMeasures m = analyzer.constituents(phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(m.p_nd_theta, 6)
        .add_double(m.p_nd_rest, 6)
        .add_double(m.i_f, 6);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nNote: P(X''_theta) is phi-independent by definition; int f is tiny because the\n"
      "recovered configuration manifests faults at mu_old = %g per hour.\n",
      params.mu_old);
  return 0;
}
