#pragma once

/// Shared main() and context reporting for the google-benchmark binaries.
///
/// The stock BENCHMARK_MAIN() reports only `library_build_type` — the build
/// type of the *benchmark library* itself, which on distro packages is
/// routinely "debug" even when this repo's code is fully optimized (and would
/// be "release" even if this repo were built -O0). The committed BENCH_*.json
/// files need the truth about the code under test, so every bench binary
/// built here injects its own context keys:
///
///   gop_build_type — CMAKE_BUILD_TYPE the gop libraries were compiled with
///   gop_ndebug     — whether assertions were compiled out (NDEBUG)
///   gop_fi         — whether fault-injection sites are compiled in
///
/// tools/run_benches.sh refuses to record results when gop_build_type is a
/// Debug flavor, and docs/performance.md documents the measurement protocol.

#include <benchmark/benchmark.h>

namespace gop::bench {

/// Registers the gop_* context keys above. Call once, after
/// benchmark::Initialize and before RunSpecifiedBenchmarks.
void add_build_context();

}  // namespace gop::bench

/// Drop-in replacement for BENCHMARK_MAIN() that reports the build context.
#define GOP_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                       \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    gop::bench::add_build_context();                                      \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }
