// Figure 12: effect of the fault-manifestation rate with a shorter mission
// period theta = 5000 (all other parameters as in Table 3).
//
// Paper result: the optima move to phi* = 2500 (mu_new = 1e-4) and
// phi* = 2000 (mu_new = 0.5e-4), and Y decays faster past the peak than in
// the theta = 10000 study.

#include "bench_common.hh"
#include "util/strings.hh"

int main() {
  using namespace gop;

  bench::print_header("Figure 12 — effect of fault-manifestation rate (theta = 5000)",
                      "paper optima: phi* = 2500 (mu_new = 1e-4), phi* = 2000 (mu_new = 5e-5)");

  const std::vector<double> phis = core::linspace(0.0, 5000.0, 11);
  std::vector<bench::Series> series;

  for (double mu_new : {1e-4, 0.5e-4}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.theta = 5000.0;
    params.mu_new = mu_new;
    core::PerformabilityAnalyzer analyzer(params);
    series.push_back(
        bench::Series{str_format("mu_new = %g", mu_new), core::sweep_phi(analyzer, phis)});
  }

  bench::print_series_table(series);
  return 0;
}
