// Extension study (not in the paper): the *distribution* of the time until
// guarded operation reaches a verdict on a faulty upgrade — the first
// passage of RMGd into {detected || failure}. The paper works with fixed-
// horizon probabilities; first-passage quantiles answer the dual question
// "how long until we know?", which is exactly what an operator choosing phi
// wants as a cross-check (phi beyond the 99% verdict quantile buys little
// additional dependability).

#include <cstdio>

#include "core/rm_gd.hh"
#include "markov/first_passage.hh"
#include "san/expr.hh"
#include "san/state_space.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== Extension — time-to-verdict distribution during guarded operation ===\n\n");

  for (double mu_new : {1e-4, 0.5e-4}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.mu_new = mu_new;
    const core::RmGd gd = core::build_rm_gd(params);
    const san::GeneratedChain chain = san::generate_state_space(gd.model);

    // Verdict = first entry into a marking with detected==1 or failure==1.
    std::vector<bool> verdict(chain.state_count(), false);
    for (size_t s = 0; s < chain.state_count(); ++s) {
      const san::Marking& m = chain.states()[s];
      verdict[s] = m[gd.detected.index] == 1 || m[gd.failure.index] == 1;
    }

    const markov::FirstPassageSummary summary =
        markov::first_passage_summary(chain.ctmc(), verdict);
    std::printf("mu_new = %g: time to verdict = %.1f h mean, %.1f h std (hit probability %.6f)\n",
                mu_new, summary.mean_time_to_absorption, summary.std_time_to_absorption,
                summary.hit_probability);

    TextTable table({"t [h]", "P(verdict by t)"});
    for (double t : {1000.0, 3000.0, 5000.0, 7000.0, 10000.0, 20000.0, 50000.0}) {
      table.begin_row().add_double(t, 6).add_double(
          markov::first_passage_cdf(chain.ctmc(), verdict, t), 6);
    }
    std::fputs(table.to_string(2).c_str(), stdout);

    for (double p : {0.5, 0.9, 0.99}) {
      const double q = markov::first_passage_quantile(chain.ctmc(), verdict, p, 1e-4);
      std::printf("  %2.0f%% verdict quantile: %8.0f h\n", p * 100.0, q);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading: at mu_new = 1e-4 half the faulty upgrades reveal themselves within\n"
      "~%d h; the paper's optimum phi = 7000 sits near the ~50%% quantile — beyond it\n"
      "each additional guarded hour buys exponentially less evidence.\n",
      6931);
  return 0;
}
