// §6 text experiment: very low acceptance-test coverage.
//
// Paper result (alpha = beta = 2500): at c = 0.20 the best achievable index
// is only Y ~ 1.06 (at phi = 4000) — too little benefit to justify guarded
// operation; at c = 0.10, Y < 1 for every phi in (0, theta] and decreases
// with phi, i.e. guarded operation is counterproductive.

#include <cstdio>

#include "bench_common.hh"
#include "util/strings.hh"

int main() {
  using namespace gop;

  bench::print_header(
      "§6 text — very low AT coverage (theta = 10000, alpha = beta = 2500)",
      "paper: c = 0.20 -> max Y ~ 1.06 at phi = 4000; c = 0.10 -> Y < 1, decreasing in phi");

  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  std::vector<bench::Series> series;

  for (double coverage : {0.20, 0.10}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = 2500.0;
    params.beta = 2500.0;
    params.coverage = coverage;
    core::PerformabilityAnalyzer analyzer(params);
    series.push_back(
        bench::Series{str_format("c = %.2f", coverage), core::sweep_phi(analyzer, phis)});
  }

  bench::print_series_table(series);

  for (const bench::Series& s : series) {
    // A fraction of a percent of degradation reduction does not justify the
    // engineering cost of running guarded operation (the paper draws the
    // same conclusion about its c = 0.20 maximum of 1.06).
    const bool worthwhile = s.max_y() > 1.01;
    std::printf("  %-12s max Y = %.5f -> guarded operation %s\n", s.label.c_str(), s.max_y(),
                worthwhile ? "yields only a marginal benefit"
                           : "is NOT worthwhile at this coverage");
  }
  return 0;
}
