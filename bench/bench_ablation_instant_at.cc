// Ablation D — the paper's instantaneous-AT simplification (§5.1).
//
// The paper argues that because the mean time to error occurrence is several
// orders of magnitude larger than an AT execution, RMGd can represent the
// acceptance test as an *instantaneous* activity. We rebuild RMGd with a
// timed AT at rate alpha (sender blocked while its message is validated) and
// compare the dependability constituent measures and Y. The differences
// should be — and are — negligible at Table 3 rates, and grow only when the
// AT slows toward the fault time scale.

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "san/state_space.hh"
#include "util/table.hh"

namespace {

void compare(const gop::core::GsuParameters& params, const char* label) {
  using namespace gop;

  const core::RmGd instant = core::build_rm_gd(params);
  const core::RmGdOptions timed_options{.instantaneous_at = false};
  const core::RmGd timed = core::build_rm_gd(params, timed_options);

  const san::GeneratedChain instant_chain = san::generate_state_space(instant.model);
  const san::GeneratedChain timed_chain = san::generate_state_space(timed.model);

  std::printf("--- %s ---\n", label);
  std::printf("state spaces: instantaneous AT %zu states, timed AT %zu states\n",
              instant_chain.state_count(), timed_chain.state_count());

  TextTable table({"phi [h]", "P(A'1) inst", "P(A'1) timed", "Ih inst", "Ih timed",
                   "abs diff Ih"});
  for (double phi : core::linspace(0.0, params.theta, 6)) {
    const double a1_instant = instant_chain.instant_reward(instant.reward_p_a1(), phi);
    const double a1_timed = timed_chain.instant_reward(timed.reward_p_a1(), phi);
    const double ih_instant = instant_chain.instant_reward(instant.reward_ih(), phi);
    const double ih_timed = timed_chain.instant_reward(timed.reward_ih(), phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(a1_instant, 7)
        .add_double(a1_timed, 7)
        .add_double(ih_instant, 7)
        .add_double(ih_timed, 7)
        .add_double(ih_timed - ih_instant, 3);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace gop;

  std::printf("=== Ablation D — instantaneous vs timed acceptance tests in RMGd ===\n\n");

  compare(core::GsuParameters::table3(), "Table 3 (alpha = 6000, 600 ms ATs)");

  core::GsuParameters slow = core::GsuParameters::table3();
  slow.alpha = 10.0;  // six-minute ATs: the simplification should start to show
  compare(slow, "stress (alpha = 10, 6-minute ATs)");

  std::printf(
      "Reading: at the paper's rates the timed-AT model is indistinguishable (diffs\n"
      "~1e-8), and even 600x slower ATs shift the measures by only ~3e-5 — the\n"
      "instantaneous simplification is extremely robust, because whether detection\n"
      "or failure wins is decided by the case probabilities, not by the (brief)\n"
      "validation delay. The cost of modelling the delay is a 3x larger state space\n"
      "for no visible change in the measures — exactly the trade-off §5.1 claims.\n");
  return 0;
}
