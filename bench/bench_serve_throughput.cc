// Serving-path performance (google-benchmark): what gop::serve adds on top
// of the solvers it wraps. The cached-query arms measure the full
// handle() path on a hot key — request hashing, LRU lookup, response
// assembly — whose throughput (items/s in BENCH_serve.json) is the
// cached-query/s capacity of one connection thread. The cold arms measure
// the end-to-end miss path (admission preflight + grid solve + cache fill)
// and the warm-restart arm the snapshot decode that lets a restarted server
// skip both. run_benches.sh records the suite to BENCH_serve.json;
// docs/serving.md discusses the numbers.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_support.hh"
#include "serve/cache.hh"
#include "serve/json.hh"
#include "serve/request.hh"
#include "serve/server.hh"

namespace {

using namespace gop;

serve::Request hot_request() {
  serve::Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {7000.0};
  return request;
}

/// Cached-query throughput on a prewarmed key: every handle() is a hit.
/// items/s here is the headline cached-query/s figure.
void BM_CachedQuery_Hot(benchmark::State& state) {
  serve::Server server;
  const serve::Response warm = server.handle(hot_request());
  if (!warm.ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  const serve::Request request = hot_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle(request).cache_hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedQuery_Hot);

/// Hot path with the per-request JSONL event sink attached (the daemon's
/// default): measures what request logging costs per query.
void BM_CachedQuery_HotLogged(benchmark::State& state) {
  serve::Server server;
  std::string sink;
  server.set_request_log([&sink](const std::string& line) { sink = line; });
  if (!server.handle(hot_request()).ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  const serve::Request request = hot_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle(request).cache_hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedQuery_HotLogged);

/// The daemon's full pipe-mode round trip for a hot key: JSON parse,
/// handle(), JSON render. Bounds what one connection can serve.
void BM_CachedQuery_WireRoundTrip(benchmark::State& state) {
  serve::Server server;
  if (!server.handle(hot_request()).ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  const std::string line =
      R"({"model":"rmgd","rewards":["P_A1","Ih"],"transient_times":[7000.0]})";
  for (auto _ : state) {
    const serve::Json document = serve::parse(line);
    const serve::Response response = server.handle(serve::parse_request(document));
    benchmark::DoNotOptimize(serve::response_to_json(response).dump().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedQuery_WireRoundTrip);

/// Cold-solve latency: every iteration asks for a grid nobody has asked for
/// before, so each handle() runs admission preflight + the full grid solve.
/// The large capacity keeps eviction out of the measurement.
void BM_ColdSolve_DistinctGrids(benchmark::State& state) {
  serve::ServerOptions options;
  options.cache_capacity = 1 << 20;
  serve::Server server(options);
  if (!server.handle(hot_request()).ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  double next = 10000.0;
  serve::Request request = hot_request();
  for (auto _ : state) {
    request.transient_times = {next};
    next += 1.0;
    benchmark::DoNotOptimize(server.handle(request).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ColdSolve_DistinctGrids);

/// Warm restart: decode + verify a snapshot of one admitted instance and
/// one cached result into a fresh server.
void BM_SnapshotLoad_WarmRestart(benchmark::State& state) {
  serve::Server writer;
  if (!writer.handle(hot_request()).ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  const std::string snapshot = writer.save_snapshot();
  for (auto _ : state) {
    serve::Server restarted;
    benchmark::DoNotOptimize(restarted.load_snapshot(snapshot).loaded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * snapshot.size()));
}
BENCHMARK(BM_SnapshotLoad_WarmRestart);

/// The cache data structure alone (no server): an upper bound that shows how
/// much of the hot path is LRU bookkeeping vs hashing and response copying.
void BM_SolvedCache_GetHit(benchmark::State& state) {
  serve::SolvedCache<serve::CachedResult> cache(1024);
  const serve::CacheKey key{1, 2, 3};
  auto value = std::make_shared<serve::CachedResult>();
  value->engine = "pade-expm";
  cache.put(key, value);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SolvedCache_GetHit);

}  // namespace

GOP_BENCH_MAIN()
