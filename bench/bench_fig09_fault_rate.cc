// Figure 9: effect of the fault-manifestation rate of the upgraded software
// on the optimal guarded-operation duration (theta = 10000).
//
// Paper result: mu_new = 1e-4 peaks at phi = 7000; mu_new = 0.5e-4 peaks at
// phi = 5000; both curves stay well above 1 across (0, theta].

#include "bench_common.hh"
#include "util/strings.hh"

int main() {
  using namespace gop;

  bench::print_header("Figure 9 — effect of fault-manifestation rate (theta = 10000)",
                      "paper optima: phi* = 7000 (mu_new = 1e-4), phi* = 5000 (mu_new = 5e-5)");

  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  std::vector<bench::Series> series;

  for (double mu_new : {1e-4, 0.5e-4}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.mu_new = mu_new;
    core::PerformabilityAnalyzer analyzer(params);
    series.push_back(
        bench::Series{str_format("mu_new = %g", mu_new), core::sweep_phi(analyzer, phis)});
  }

  bench::print_series_table(series);
  return 0;
}
