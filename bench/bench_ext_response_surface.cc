// Extension — the full response surface Y(phi, c) and Y(phi, mu_new).
//
// The paper samples the surface along a few one-dimensional cuts (Figures
// 9-12). The analyzer is cheap enough to print the whole grid, which makes
// two of the paper's qualitative claims visible at once: the ridge of
// optimal phi runs (almost) parallel to the coverage axis (Figure 11's
// insensitivity), but bends strongly along the fault-rate axis (Figure 9).
// Rows are phi, columns the second parameter; paste into any plotting tool.

#include <cstdio>
#include <memory>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

using namespace gop;

template <typename MakeAnalyzer>
void surface(const char* title, const std::vector<double>& columns, const char* column_label,
             MakeAnalyzer&& make_analyzer) {
  std::printf("--- %s ---\n", title);
  std::vector<std::string> headers{"phi \\ " + std::string(column_label)};
  for (double c : columns) headers.push_back(format_compact(c, 4));
  TextTable table(std::move(headers));

  // One analyzer per column (the models depend on the column parameter);
  // rows reuse them.
  std::vector<std::unique_ptr<core::PerformabilityAnalyzer>> analyzers;
  for (double c : columns) analyzers.push_back(make_analyzer(c));

  for (double phi : core::linspace(0.0, 10000.0, 11)) {
    table.begin_row().add_double(phi, 6);
    for (const auto& analyzer : analyzers) table.add_double(analyzer->evaluate(phi).y, 5);
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Ridge line: the grid-optimal phi per column.
  std::printf("ridge (grid-optimal phi per column):");
  for (const auto& analyzer : analyzers) {
    double best_phi = 0.0, best_y = -1.0;
    for (double phi : core::linspace(0.0, 10000.0, 11)) {
      const double y = analyzer->evaluate(phi).y;
      if (y > best_y) {
        best_y = y;
        best_phi = phi;
      }
    }
    std::printf(" %.0f", best_phi);
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("=== Extension — response surfaces of Y (theta = 10000) ===\n\n");

  surface("Y(phi, coverage) at alpha = beta = 2500", {0.5, 0.65, 0.8, 0.95}, "c",
          [](double coverage) {
            core::GsuParameters params = core::GsuParameters::table3();
            params.alpha = params.beta = 2500.0;
            params.coverage = coverage;
            return std::make_unique<core::PerformabilityAnalyzer>(params);
          });

  surface("Y(phi, mu_new) at Table 3", {0.5e-4, 0.75e-4, 1e-4, 1.5e-4, 2e-4}, "mu_new",
          [](double mu_new) {
            core::GsuParameters params = core::GsuParameters::table3();
            params.mu_new = mu_new;
            return std::make_unique<core::PerformabilityAnalyzer>(params);
          });

  std::printf(
      "Reading: the ridge is flat in c (Figure 11's insensitivity, now visible as a\n"
      "whole line) and climbs steeply in mu_new (Figure 9's sensitivity).\n");
  return 0;
}
