#include "bench_support.hh"

namespace gop::bench {

void add_build_context() {
#ifdef GOP_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("gop_build_type", GOP_BENCH_BUILD_TYPE);
#else
  benchmark::AddCustomContext("gop_build_type", "unknown");
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("gop_ndebug", "true");
#else
  benchmark::AddCustomContext("gop_ndebug", "false");
#endif
#ifdef GOP_FI_ENABLED
  benchmark::AddCustomContext("gop_fi", "compiled-in");
#else
  benchmark::AddCustomContext("gop_fi", "compiled-out");
#endif
}

}  // namespace gop::bench
