// Pointwise-vs-batched phi-sweep (google-benchmark): the legacy per-measure
// evaluation loop — one solver run per (point, measure), which is what the
// pre-session pipeline executed — against the session-batched pipeline
// (PerformabilityAnalyzer::evaluate_batch), at 1/2/4/8 worker threads for the
// batched arm. Both arms produce bit-identical constituent measures (the
// session layer replays the pointwise solvers exactly), so the wall-clock gap
// is pure amortization: on the paper's dense-engine chains the per-measure
// loop runs eight matrix exponentials per point where the batched pipeline
// runs four, and under uniformization the batch needs one propagation pass
// per chain for the whole grid.
//
// Emit machine-readable output for the perf trajectory with
//   bench_sweep_batch --benchmark_format=json
// (tools/run_benches.sh writes BENCH_sweep.json at the repo root).

#include <benchmark/benchmark.h>

#include "bench_support.hh"

#include <vector>

#include "bench_common.hh"
#include "core/performability.hh"
#include "core/sweep.hh"
#include "core/templates.hh"
#include "san/template.hh"

namespace {

using namespace gop;

const core::GsuParameters& table3() {
  static const core::GsuParameters params = core::GsuParameters::table3();
  return params;
}

const core::PerformabilityAnalyzer& analyzer() {
  static const core::PerformabilityAnalyzer instance(table3());
  return instance;
}

/// The seed pipeline's constituent solve plan: one solver invocation per
/// (point, measure), reconstructed through the public chain accessors. This
/// is the baseline evaluate_batch replaces.
core::ConstituentMeasures per_measure_constituents(const core::PerformabilityAnalyzer& a,
                                                   double phi) {
  core::ConstituentMeasures m;
  m.rho1 = a.rho1();
  m.rho2 = a.rho2();
  const auto& gd = a.rm_gd();
  m.p_a1_phi = a.gd_chain().instant_reward(gd.reward_p_a1(), phi);
  m.i_h = a.gd_chain().instant_reward(gd.reward_ih(), phi);
  m.i_hf = a.gd_chain().instant_reward(gd.reward_ihf(), phi);
  m.i_tau_h = a.gd_chain().accumulated_reward(gd.reward_itauh(), phi);
  const double p_detected = a.gd_chain().instant_reward(gd.reward_detected(), phi);
  const double detected_area = a.gd_chain().accumulated_reward(gd.reward_detected(), phi);
  m.i_tau_h_literal = phi * p_detected - detected_area;
  const double rest = a.parameters().theta - phi;
  m.p_nd_rest = a.nd_new_chain().instant_reward(a.rm_nd_new().reward_no_failure(), rest);
  m.i_f = 1.0 - a.nd_old_chain().instant_reward(a.rm_nd_old().reward_no_failure(), rest);
  return m;
}

void BM_SweepPerMeasure41(benchmark::State& state) {
  const std::vector<double> grid = core::linspace(0.0, table3().theta, 41);
  const bench::CounterWatch expm("markov.matrix_exponentials");
  for (auto _ : state) {
    for (double phi : grid) {
      core::ConstituentMeasures m = per_measure_constituents(analyzer(), phi);
      benchmark::DoNotOptimize(&m);
    }
  }
  state.counters["points"] = 41.0;
  state.counters["expm_per_sweep"] = expm.per_iteration(state.iterations());
}
BENCHMARK(BM_SweepPerMeasure41)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_SweepBatched41(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  const std::vector<double> grid = core::linspace(0.0, table3().theta, 41);
  const bench::CounterWatch expm("markov.matrix_exponentials");
  for (auto _ : state) {
    std::vector<core::PerformabilityResult> results = analyzer().evaluate_batch(grid, threads);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["points"] = 41.0;
  state.counters["expm_per_sweep"] = expm.per_iteration(state.iterations());
}
BENCHMARK(BM_SweepBatched41)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

// Template instantiation throughput: resolve + build + reward catalog for one
// nproc instance (no state-space generation — that cost is the structural
// sweep's). Tracks the overhead the template layer adds over calling the
// builder directly.
void BM_TemplateInstantiate(benchmark::State& state) {
  const auto n = static_cast<int64_t>(state.range(0));
  const san::tpl::Template& nproc = core::template_registry().find("nproc");
  san::tpl::Assignment assignment;
  assignment.set_int("n", n);
  for (auto _ : state) {
    san::tpl::Instance instance = nproc.instantiate(assignment);
    benchmark::DoNotOptimize(instance.model.get());
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TemplateInstantiate)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// The whole structural pipeline: instantiate -> generate -> grid solve for
// the nproc N in {1,2,3} cross at a 5-point grid (the golden scenario), at
// 1/2/4 worker threads across cells.
void BM_StructuralSweep(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  core::StructuralSweepSpec spec;
  spec.family = "nproc";
  spec.axes.push_back({"n", {san::tpl::ParamValue::of_int(1), san::tpl::ParamValue::of_int(2),
                             san::tpl::ParamValue::of_int(3)}});
  spec.phis = core::linspace(0.0, 20.0, 5);
  spec.threads = threads;
  for (auto _ : state) {
    core::StructuralSweepResult result = core::structural_sweep(spec);
    benchmark::DoNotOptimize(result.cells.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = 3.0;
}
BENCHMARK(BM_StructuralSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

GOP_BENCH_MAIN();
