// Ablation E — duration distribution of the safeguard activities in RMGp.
//
// The paper models AT and checkpoint durations as exponential (a modelling
// convenience; real validation code has far less variable run time). We
// rebuild RMGp with Erlang-k durations of the same means (squared
// coefficient of variation 1/k) and watch rho1/rho2 and the downstream Y.
// If the overheads barely move, the exponential-duration convenience is
// harmless for this study.

#include <cstdio>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "san/state_space.hh"
#include "util/strings.hh"
#include "util/table.hh"

int main() {
  using namespace gop;

  std::printf("=== Ablation E — safeguard duration shape (exponential vs Erlang-k) ===\n\n");

  const core::GsuParameters params = core::GsuParameters::table3();

  TextTable table({"duration shape", "states", "1-rho1", "1-rho2", "rho1", "rho2"});
  double rho1_exponential = 0.0, rho2_exponential = 0.0;
  std::vector<std::pair<double, double>> rhos;
  for (int32_t stages : {1, 2, 4, 8}) {
    const core::RmGpOptions options{.duration_stages = stages};
    const core::RmGp gp = core::build_rm_gp(params, options);
    const san::GeneratedChain chain = san::generate_state_space(gp.model);
    const double overhead1 = chain.steady_state_reward(gp.reward_overhead_p1n());
    const double overhead2 = chain.steady_state_reward(gp.reward_overhead_p2());
    if (stages == 1) {
      rho1_exponential = 1.0 - overhead1;
      rho2_exponential = 1.0 - overhead2;
    }
    rhos.emplace_back(1.0 - overhead1, 1.0 - overhead2);
    table.begin_row()
        .add(stages == 1 ? "exponential" : gop::str_format("Erlang-%d", stages))
        .add_int(static_cast<long long>(chain.state_count()))
        .add_double(overhead1, 5)
        .add_double(overhead2, 5)
        .add_double(1.0 - overhead1, 5)
        .add_double(1.0 - overhead2, 5);
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Downstream effect on Y at the published optimum, via the rho overrides.
  std::printf("\neffect on Y(7000) via the overheads:\n");
  TextTable y_table({"duration shape", "Y(7000)"});
  const char* labels[] = {"exponential", "Erlang-2", "Erlang-4", "Erlang-8"};
  for (size_t i = 0; i < rhos.size(); ++i) {
    core::AnalyzerOptions options;
    options.override_rho1 = rhos[i].first;
    options.override_rho2 = rhos[i].second;
    const core::PerformabilityAnalyzer analyzer(params, options);
    y_table.begin_row().add(labels[i]).add_double(analyzer.evaluate(7000.0).y, 6);
  }
  std::fputs(y_table.to_string().c_str(), stdout);

  std::printf(
      "\nbaseline (exponential): rho1 = %.4f, rho2 = %.4f — the paper's published\n"
      "anchors are (0.98, 0.95). Less-variable durations leave the overheads\n"
      "unchanged beyond the fifth digit: the steady-state busy fractions depend on\n"
      "the duration *means*, with the shape entering only through second-order\n"
      "blocking interactions. The exponential convenience is harmless here.\n",
      rho1_exponential, rho2_exponential);
  return 0;
}
