// Figure 10: effect of the safeguard performance overhead on the optimal
// guarded-operation duration (theta = 10000, mu_new = 1e-4).
//
// Paper result: alpha = beta = 6000 gives (rho1, rho2) ~ (0.98, 0.95) and
// phi* = 7000; alpha = beta = 2500 gives (rho1, rho2) ~ (0.95, 0.90) and
// phi* = 6000 — higher overhead pulls the cutoff earlier.

#include "bench_common.hh"
#include "util/strings.hh"

int main() {
  using namespace gop;

  bench::print_header(
      "Figure 10 — effect of performance overhead (theta = 10000)",
      "paper optima: phi* = 7000 at (rho1,rho2)=(0.98,0.95); phi* = 6000 at (0.95,0.90)");

  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  std::vector<bench::Series> series;

  for (double rate : {6000.0, 2500.0}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = rate;
    params.beta = rate;
    core::PerformabilityAnalyzer analyzer(params);
    std::printf("alpha = beta = %-6g ->  rho1 = %.4f, rho2 = %.4f\n", rate, analyzer.rho1(),
                analyzer.rho2());
    series.push_back(bench::Series{
        str_format("rho1=%.3f rho2=%.3f", analyzer.rho1(), analyzer.rho2()),
        core::sweep_phi(analyzer, phis)});
  }
  std::printf("\n");

  bench::print_series_table(series);
  return 0;
}
